#pragma once
// Per-component de Bruijn graphs: the FastaToDebruijn and QuantifyGraph
// sub-steps of Chrysalis (the paper lists them among the Chrysalis phases
// that stay serial in its parallelization).
//
// Nodes are the k-mers of the component's contigs in their literal
// orientation; an edge connects consecutive k-mers (a (k-1)-overlap, one
// appended base). QuantifyGraph adds per-node read support from the reads
// ReadsToTranscripts assigned to the component; Butterfly later uses the
// supports to rank branches during path reconstruction.

#include <array>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/sequence.hpp"

namespace trinity::chrysalis {

/// A de Bruijn graph over the k-mers of one component.
class DeBruijnGraph {
 public:
  /// Builds the graph from the component's contigs. Contigs shorter than k
  /// contribute nothing.
  DeBruijnGraph(const std::vector<seq::Sequence>& contigs, int k);

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// The packed k-mer of node `id`.
  [[nodiscard]] seq::KmerCode node_kmer(std::int32_t id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }

  /// Node id of a k-mer, or -1 when absent.
  [[nodiscard]] std::int32_t node_id(seq::KmerCode code) const;

  /// Successor node when appending base code `b` (0..3), or -1.
  [[nodiscard]] std::int32_t successor(std::int32_t id, std::uint8_t b) const {
    return out_[static_cast<std::size_t>(id)][b];
  }

  /// Number of outgoing / incoming edges of a node.
  [[nodiscard]] int out_degree(std::int32_t id) const;
  [[nodiscard]] int in_degree(std::int32_t id) const {
    return in_degree_[static_cast<std::size_t>(id)];
  }

  /// Read support of a node (0 until quantify() ran).
  [[nodiscard]] std::uint32_t support(std::int32_t id) const {
    return support_[static_cast<std::size_t>(id)];
  }

  /// QuantifyGraph: adds +1 support to every node whose k-mer occurs in
  /// `read` on either strand.
  void quantify(const seq::Sequence& read);

  /// Convenience over a batch of reads.
  void quantify_all(const std::vector<seq::Sequence>& reads);

  /// Nodes with in-degree 0, in id order — Butterfly's path start points.
  [[nodiscard]] std::vector<std::int32_t> source_nodes() const;

  /// Serializes the graph (FastaToDebruijn's output file in Trinity):
  ///   #trinity-debruijn k=<k> nodes=<n> edges=<m>
  ///   N <kmer> <support>     one per node, in id order
  ///   E <from> <to>          one per edge
  void write(std::ostream& out) const;

  /// Reads a graph written by write(). Throws std::runtime_error on
  /// malformed input (bad header, dangling edge, non-(k-1)-overlap edge).
  static DeBruijnGraph read(std::istream& in);

 private:
  DeBruijnGraph() : k_(1) {}  // for read()

  /// Inserts a node if absent; returns its id.
  std::int32_t intern_node(seq::KmerCode code);
  /// Adds the edge from -> to (to = roll of from); no-op when present.
  void add_edge(std::int32_t from, std::int32_t to);

  void add_contig(const std::string& bases);

  int k_;
  std::vector<seq::KmerCode> nodes_;
  std::unordered_map<seq::KmerCode, std::int32_t> ids_;
  std::vector<std::array<std::int32_t, 4>> out_;
  std::vector<int> in_degree_;
  std::vector<std::uint32_t> support_;
  std::size_t num_edges_ = 0;
};

}  // namespace trinity::chrysalis
