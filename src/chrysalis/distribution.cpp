#include "chrysalis/distribution.hpp"

#include <algorithm>

namespace trinity::chrysalis {

ChunkedRoundRobin::ChunkedRoundRobin(std::size_t num_items, int nranks, std::size_t chunk_size)
    : num_items_(num_items), nranks_(nranks), chunk_size_(chunk_size) {
  if (nranks < 1) throw std::invalid_argument("ChunkedRoundRobin: nranks must be >= 1");
  if (chunk_size < 1) throw std::invalid_argument("ChunkedRoundRobin: chunk_size must be >= 1");
}

std::size_t ChunkedRoundRobin::num_chunks() const {
  return (num_items_ + chunk_size_ - 1) / chunk_size_;
}

std::vector<IndexRange> ChunkedRoundRobin::chunks_for(int rank) const {
  std::vector<IndexRange> out;
  const std::size_t chunks = num_chunks();
  for (std::size_t c = static_cast<std::size_t>(rank); c < chunks;
       c += static_cast<std::size_t>(nranks_)) {
    IndexRange r;
    r.begin = c * chunk_size_;
    r.end = std::min(r.begin + chunk_size_, num_items_);  // tail clip
    out.push_back(r);
  }
  return out;
}

int ChunkedRoundRobin::owner_of(std::size_t index) const {
  const std::size_t chunk = index / chunk_size_;
  return static_cast<int>(chunk % static_cast<std::size_t>(nranks_));
}

std::size_t ChunkedRoundRobin::default_chunk_size(std::size_t num_items, int nranks,
                                                  int threads) {
  const std::size_t workers =
      static_cast<std::size_t>(nranks) * static_cast<std::size_t>(std::max(threads, 1));
  // The paper sizes chunks proportionally to items / workers. Inchworm
  // emits contigs in decreasing seed abundance, so per-contig cost falls
  // steeply along the array; many chunks per rank (16x workers) let the
  // round-robin stripe every rank across that gradient.
  const std::size_t size = num_items / (workers * 16 + 1);
  return std::max<std::size_t>(size, 1);
}

BlockDistribution::BlockDistribution(std::size_t num_items, int nranks)
    : num_items_(num_items), nranks_(nranks) {
  if (nranks < 1) throw std::invalid_argument("BlockDistribution: nranks must be >= 1");
}

IndexRange BlockDistribution::block_for(int rank) const {
  const auto p = static_cast<std::size_t>(rank);
  const auto n = static_cast<std::size_t>(nranks_);
  const std::size_t base = num_items_ / n;
  const std::size_t extra = num_items_ % n;
  IndexRange r;
  r.begin = p * base + std::min(p, extra);
  r.end = r.begin + base + (p < extra ? 1 : 0);
  return r;
}

int BlockDistribution::owner_of(std::size_t index) const {
  for (int p = 0; p < nranks_; ++p) {
    const IndexRange r = block_for(p);
    if (index >= r.begin && index < r.end) return p;
  }
  return nranks_ - 1;
}

}  // namespace trinity::chrysalis
