#include "chrysalis/transcript_index.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "chrysalis/reads_to_transcripts.hpp"
#include "io/error.hpp"
#include "io/io_file.hpp"
#include "kmer/flat_index.hpp"
#include "util/hash.hpp"

namespace trinity::chrysalis {

namespace {

/// The 64-byte on-disk header (docs/INDEXING.md). Fixed-width fields, no
/// implicit padding; written and read in host byte order (little-endian on
/// every platform this repo targets — load() rejects a byte-swapped magic
/// rather than translating).
struct FileHeader {
  std::uint64_t magic = kTranscriptIndexMagic;
  std::uint32_t version = kTranscriptIndexFormatVersion;
  std::uint32_t k = 0;
  std::uint64_t slot_count = 0;
  std::uint64_t entry_count = 0;
  std::uint64_t interval_count = 0;
  std::uint64_t component_count = 0;
  std::uint64_t payload_checksum = 0;  ///< FNV-1a over everything after the header
  std::uint64_t reserved = 0;
};
static_assert(sizeof(FileHeader) == 64 && std::is_trivially_copyable_v<FileHeader>);

/// Slot count for `entries` distinct keys: the next power of two keeping
/// the load factor under FlatKmerIndex's 0.7 ceiling (same probe-chain
/// behaviour as the voting map it replaces), never below 16.
std::uint64_t slot_count_for(std::uint64_t entries) {
  std::uint64_t want = 16;
  while (static_cast<double>(entries) >= 0.7 * static_cast<double>(want)) want *= 2;
  return want;
}

std::size_t image_bytes_for(std::uint64_t slots, std::uint64_t intervals) {
  return sizeof(FileHeader) + slots * (sizeof(std::uint64_t) + sizeof(std::uint32_t)) +
         intervals * sizeof(PathInterval);
}

}  // namespace

// --- EquivalenceClassCounter -------------------------------------------------

void EquivalenceClassCounter::add(const std::vector<std::int32_t>& labels) {
  if (labels.empty()) return;
  ++counts_[labels];
}

void EquivalenceClassCounter::merge(const EquivalenceClassCounter& other) {
  for (const auto& [labels, count] : other.counts_) counts_[labels] += count;
}

std::vector<EquivalenceClass> EquivalenceClassCounter::classes() const {
  std::vector<EquivalenceClass> out;
  out.reserve(counts_.size());
  for (const auto& [labels, count] : counts_) out.push_back({labels, count});
  return out;
}

std::uint64_t EquivalenceClassCounter::total_reads() const {
  std::uint64_t total = 0;
  for (const auto& [labels, count] : counts_) total += count;
  return total;
}

std::string EquivalenceClassCounter::serialize() const {
  std::ostringstream out;
  for (const auto& [labels, count] : counts_) {
    out << count << '\t';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out << ',';
      out << labels[i];
    }
    out << '\n';
  }
  return out.str();
}

EquivalenceClassCounter EquivalenceClassCounter::deserialize(const std::string& text) {
  EquivalenceClassCounter out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error("EquivalenceClassCounter: malformed line '" + line + "'");
    }
    const std::uint64_t count = std::stoull(line.substr(0, tab));
    std::vector<std::int32_t> labels;
    std::size_t start = tab + 1;
    while (start <= line.size()) {
      const auto comma = line.find(',', start);
      const auto end = comma == std::string::npos ? line.size() : comma;
      labels.push_back(static_cast<std::int32_t>(std::stol(line.substr(start, end - start))));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    out.counts_[labels] += count;
  }
  return out;
}

// --- TranscriptIndex ---------------------------------------------------------

TranscriptIndex::TranscriptIndex(TranscriptIndex&& other) noexcept {
  *this = std::move(other);
}

TranscriptIndex& TranscriptIndex::operator=(TranscriptIndex&& other) noexcept {
  if (this == &other) return *this;
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
  k_ = other.k_;
  slot_count_ = other.slot_count_;
  entry_count_ = other.entry_count_;
  interval_count_ = other.interval_count_;
  component_count_ = other.component_count_;
  owned_ = std::move(other.owned_);
  map_base_ = std::exchange(other.map_base_, nullptr);
  map_length_ = std::exchange(other.map_length_, 0);
  image_size_ = std::exchange(other.image_size_, 0);
  attach_sections();
  other.keys_ = nullptr;
  other.slots_ = nullptr;
  other.intervals_ = nullptr;
  other.slot_count_ = other.entry_count_ = other.interval_count_ = 0;
  return *this;
}

TranscriptIndex::~TranscriptIndex() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
}

const char* TranscriptIndex::image_data() const {
  if (map_base_ != nullptr) return static_cast<const char*>(map_base_);
  return reinterpret_cast<const char*>(owned_.data());
}

void TranscriptIndex::attach_sections() {
  if (image_size_ == 0) {
    keys_ = nullptr;
    slots_ = nullptr;
    intervals_ = nullptr;
    return;
  }
  const char* base = image_data() + sizeof(FileHeader);
  keys_ = reinterpret_cast<const std::uint64_t*>(base);
  slots_ = reinterpret_cast<const std::uint32_t*>(base + slot_count_ * sizeof(std::uint64_t));
  intervals_ = reinterpret_cast<const PathInterval*>(
      base + slot_count_ * (sizeof(std::uint64_t) + sizeof(std::uint32_t)));
}

const PathInterval* TranscriptIndex::lookup(seq::KmerCode code) const {
  if (slot_count_ == 0) return nullptr;
  const std::uint64_t mask = slot_count_ - 1;
  std::uint64_t slot = kmer::mix_kmer_code(code) & mask;
  // Linear probe, same scheme as the voting map's FlatKmerIndex; slot
  // value 0 marks a free slot (interval ids are stored off by one).
  while (slots_[slot] != 0) {
    if (keys_[slot] == code) return &intervals_[slots_[slot] - 1];
    slot = (slot + 1) & mask;
  }
  return nullptr;
}

TranscriptIndex TranscriptIndex::build(const std::vector<seq::Sequence>& contigs,
                                       const ComponentSet& components, int k) {
  // Resolve every k-mer's component with the exact voting-map semantics
  // (smallest component id on cross-component collisions) — the source of
  // the bit-identical-assignments guarantee.
  const auto bundle_of = build_bundle_kmer_map(contigs, components, k);

  TranscriptIndex index;
  index.k_ = static_cast<std::uint32_t>(k);
  index.slot_count_ = slot_count_for(bundle_of.size());
  index.component_count_ = components.num_components();

  // The final slot arrays double as the build-time dedupe structure, so
  // the layout is a pure function of the walk below (deterministic, and
  // what save() serializes verbatim).
  std::vector<std::uint64_t> keys(index.slot_count_, 0);
  std::vector<std::uint32_t> slots(index.slot_count_, 0);
  std::vector<PathInterval> intervals;
  const std::uint64_t mask = index.slot_count_ - 1;

  const auto locate = [&](seq::KmerCode code) {
    std::uint64_t slot = kmer::mix_kmer_code(code) & mask;
    while (slots[slot] != 0 && keys[slot] != code) slot = (slot + 1) & mask;
    return slot;
  };

  const seq::KmerCodec codec(k);
  for (const auto& comp : components.components) {
    for (const auto contig_id : comp.contig_ids) {
      const auto& contig = contigs.at(static_cast<std::size_t>(contig_id));
      // Chain consecutive new k-mer starts that resolve to one component
      // into a unique-path interval; a repeated k-mer, a component switch
      // or a position gap (non-ACGT window) breaks the chain.
      bool open = false;
      std::size_t prev_position = 0;
      for (const auto& occ : codec.extract_canonical(contig.bases)) {
        const std::uint64_t slot = locate(occ.code);
        if (slots[slot] != 0) {  // seen in an earlier contig or earlier here
          open = false;
          continue;
        }
        const std::int32_t component = *bundle_of.lookup(occ.code);
        if (!open || intervals.back().component != component ||
            occ.position != prev_position + 1) {
          intervals.push_back({component, contig_id,
                               static_cast<std::uint32_t>(occ.position), 0});
          open = true;
        }
        ++intervals.back().length;
        keys[slot] = occ.code;
        slots[slot] = static_cast<std::uint32_t>(intervals.size());  // id + 1
        ++index.entry_count_;
        prev_position = occ.position;
      }
    }
  }
  index.interval_count_ = intervals.size();

  // Assemble the serialized image: header + keys + slots + intervals. The
  // buffer is u64-backed so every section meets its alignment.
  index.image_size_ = image_bytes_for(index.slot_count_, index.interval_count_);
  index.owned_.assign((index.image_size_ + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t),
                      0);
  char* base = reinterpret_cast<char*>(index.owned_.data());
  char* cursor = base + sizeof(FileHeader);
  std::memcpy(cursor, keys.data(), keys.size() * sizeof(std::uint64_t));
  cursor += keys.size() * sizeof(std::uint64_t);
  std::memcpy(cursor, slots.data(), slots.size() * sizeof(std::uint32_t));
  cursor += slots.size() * sizeof(std::uint32_t);
  if (!intervals.empty()) {
    std::memcpy(cursor, intervals.data(), intervals.size() * sizeof(PathInterval));
  }

  FileHeader header;
  header.k = index.k_;
  header.slot_count = index.slot_count_;
  header.entry_count = index.entry_count_;
  header.interval_count = index.interval_count_;
  header.component_count = index.component_count_;
  header.payload_checksum =
      util::fnv1a(base + sizeof(FileHeader), index.image_size_ - sizeof(FileHeader));
  std::memcpy(base, &header, sizeof(FileHeader));

  index.attach_sections();
  return index;
}

void TranscriptIndex::save(const std::string& path) const {
  if (image_size_ == 0) {
    throw std::logic_error("TranscriptIndex::save: index was never built or loaded");
  }
  io::write_file_atomic(path, std::string_view(image_data(), image_size_));
}

TranscriptIndex TranscriptIndex::load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw io::IoError(io::classify_errno(errno), "open", path, errno,
                      "cannot open transcript index");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw io::IoError(io::classify_errno(err), "fstat", path, err,
                      "cannot stat transcript index");
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < sizeof(FileHeader)) {
    ::close(fd);
    throw io::ParseError(io::ParseCategory::kMissingHeader, path, 1, 0,
                         "file is " + std::to_string(size) +
                             " bytes, smaller than the " +
                             std::to_string(sizeof(FileHeader)) +
                             "-byte index header");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int mmap_errno = errno;
  ::close(fd);
  if (base == MAP_FAILED) {
    throw io::IoError(io::classify_errno(mmap_errno), "mmap", path, mmap_errno,
                      "cannot map transcript index");
  }

  TranscriptIndex index;
  index.map_base_ = base;
  index.map_length_ = size;

  FileHeader header;
  std::memcpy(&header, base, sizeof(FileHeader));
  if (header.magic != kTranscriptIndexMagic) {
    throw io::ParseError(io::ParseCategory::kMissingHeader, path, 1, 0,
                         "bad magic: not a transcript index file");
  }
  if (header.version != kTranscriptIndexFormatVersion) {
    throw io::ParseError(
        io::ParseCategory::kMissingHeader, path, 1, 0,
        "format version " + std::to_string(header.version) + ", this build reads version " +
            std::to_string(kTranscriptIndexFormatVersion) +
            "; rebuild the index (--r2t-index build)");
  }
  if (header.k < 1 || header.k > 32 || header.slot_count < 16 ||
      (header.slot_count & (header.slot_count - 1)) != 0 ||
      header.entry_count > header.slot_count) {
    throw io::ParseError(io::ParseCategory::kMissingHeader, path, 1, 0,
                         "header invariants violated (k=" + std::to_string(header.k) +
                             ", slots=" + std::to_string(header.slot_count) + ")");
  }
  const std::uint64_t expected = image_bytes_for(header.slot_count, header.interval_count);
  if (size != expected) {
    throw io::ParseError(io::ParseCategory::kTruncatedRecord, path, 1, expected,
                         "file is " + std::to_string(size) + " bytes, header implies " +
                             std::to_string(expected));
  }
  const std::uint64_t checksum = util::fnv1a(static_cast<const char*>(base) + sizeof(FileHeader),
                                             size - sizeof(FileHeader));
  if (checksum != header.payload_checksum) {
    throw io::ParseError(io::ParseCategory::kInvalidCharacter, path, 1, sizeof(FileHeader),
                         "payload checksum mismatch: index file is corrupt");
  }

  index.k_ = header.k;
  index.slot_count_ = header.slot_count;
  index.entry_count_ = header.entry_count;
  index.interval_count_ = header.interval_count;
  index.component_count_ = header.component_count;
  index.image_size_ = size;
  index.attach_sections();
  return index;
}

// --- TranscriptIndexCache ----------------------------------------------------

std::shared_ptr<const TranscriptIndex> TranscriptIndexCache::find(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it != entries_.end() ? it->second : nullptr;
}

std::shared_ptr<const TranscriptIndex> TranscriptIndexCache::put(
    std::uint64_t key, std::shared_ptr<const TranscriptIndex> index) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, std::move(index));
  return it->second;
}

std::size_t TranscriptIndexCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace trinity::chrysalis
