#include "chrysalis/debruijn.hpp"

#include <sstream>
#include <stdexcept>

#include "seq/dna.hpp"

namespace trinity::chrysalis {

DeBruijnGraph::DeBruijnGraph(const std::vector<seq::Sequence>& contigs, int k) : k_(k) {
  const seq::KmerCodec codec(k);  // validates k
  for (const auto& contig : contigs) add_contig(contig.bases);
}

std::int32_t DeBruijnGraph::intern_node(seq::KmerCode code) {
  auto [it, inserted] = ids_.emplace(code, static_cast<std::int32_t>(nodes_.size()));
  if (inserted) {
    nodes_.push_back(code);
    out_.push_back({-1, -1, -1, -1});
    in_degree_.push_back(0);
    support_.push_back(0);
  }
  return it->second;
}

void DeBruijnGraph::add_edge(std::int32_t from, std::int32_t to) {
  const std::uint8_t b = seq::KmerCodec::last_base(nodes_[static_cast<std::size_t>(to)]);
  auto& slot = out_[static_cast<std::size_t>(from)][b];
  if (slot < 0) {
    slot = to;
    ++in_degree_[static_cast<std::size_t>(to)];
    ++num_edges_;
  }
}

void DeBruijnGraph::add_contig(const std::string& bases) {
  const seq::KmerCodec codec(k_);
  const auto occurrences = codec.extract(bases);
  std::int32_t prev_id = -1;
  std::size_t prev_pos = 0;
  for (const auto& occ : occurrences) {
    const std::int32_t id = intern_node(occ.code);
    // Consecutive window positions share a (k-1)-overlap; a gap (from an
    // invalid base) breaks the chain.
    if (prev_id >= 0 && occ.position == prev_pos + 1) {
      add_edge(prev_id, id);
    }
    prev_id = id;
    prev_pos = occ.position;
  }
}

void DeBruijnGraph::write(std::ostream& out) const {
  const seq::KmerCodec codec(k_);
  out << "#trinity-debruijn k=" << k_ << " nodes=" << nodes_.size()
      << " edges=" << num_edges_ << '\n';
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out << "N " << codec.decode(nodes_[i]) << ' ' << support_[i] << '\n';
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto succ : out_[i]) {
      if (succ >= 0) out << "E " << i << ' ' << succ << '\n';
    }
  }
}

DeBruijnGraph DeBruijnGraph::read(std::istream& in) {
  std::string header;
  std::getline(in, header);
  int k = 0;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  if (std::sscanf(header.c_str(), "#trinity-debruijn k=%d nodes=%zu edges=%zu", &k, &nodes,
                  &edges) != 3) {
    throw std::runtime_error("DeBruijnGraph::read: bad header");
  }
  DeBruijnGraph g;
  g.k_ = k;
  const seq::KmerCodec codec(k);  // validates k

  std::string line;
  std::size_t seen_nodes = 0;
  std::size_t seen_edges = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    char tag = 0;
    row >> tag;
    if (tag == 'N') {
      std::string kmer;
      std::uint32_t support = 0;
      if (!(row >> kmer >> support) || kmer.size() != static_cast<std::size_t>(k)) {
        throw std::runtime_error("DeBruijnGraph::read: malformed node row");
      }
      const auto code = codec.encode(kmer);
      if (!code) throw std::runtime_error("DeBruijnGraph::read: invalid k-mer");
      const std::int32_t id = g.intern_node(*code);
      if (static_cast<std::size_t>(id) + 1 != g.nodes_.size()) {
        throw std::runtime_error("DeBruijnGraph::read: duplicate node");
      }
      g.support_[static_cast<std::size_t>(id)] = support;
      ++seen_nodes;
    } else if (tag == 'E') {
      std::int32_t from = 0;
      std::int32_t to = 0;
      if (!(row >> from >> to) || from < 0 || to < 0 ||
          static_cast<std::size_t>(from) >= g.nodes_.size() ||
          static_cast<std::size_t>(to) >= g.nodes_.size()) {
        throw std::runtime_error("DeBruijnGraph::read: dangling edge");
      }
      // Edges must respect the (k-1)-overlap invariant.
      if (codec.suffix(g.nodes_[static_cast<std::size_t>(from)]) !=
          codec.prefix(g.nodes_[static_cast<std::size_t>(to)])) {
        throw std::runtime_error("DeBruijnGraph::read: edge violates (k-1) overlap");
      }
      g.add_edge(from, to);
      ++seen_edges;
    } else {
      throw std::runtime_error("DeBruijnGraph::read: unknown row tag");
    }
  }
  if (seen_nodes != nodes || seen_edges != edges) {
    throw std::runtime_error("DeBruijnGraph::read: count mismatch with header");
  }
  return g;
}

std::int32_t DeBruijnGraph::node_id(seq::KmerCode code) const {
  const auto it = ids_.find(code);
  return it == ids_.end() ? -1 : it->second;
}

int DeBruijnGraph::out_degree(std::int32_t id) const {
  int d = 0;
  for (const auto succ : out_[static_cast<std::size_t>(id)]) {
    if (succ >= 0) ++d;
  }
  return d;
}

void DeBruijnGraph::quantify(const seq::Sequence& read) {
  const seq::KmerCodec codec(k_);
  auto bump = [&](const std::string& bases) {
    for (const auto& occ : codec.extract(bases)) {
      const std::int32_t id = node_id(occ.code);
      if (id >= 0) ++support_[static_cast<std::size_t>(id)];
    }
  };
  bump(read.bases);
  bump(seq::reverse_complement(read.bases));
}

void DeBruijnGraph::quantify_all(const std::vector<seq::Sequence>& reads) {
  for (const auto& read : reads) quantify(read);
}

std::vector<std::int32_t> DeBruijnGraph::source_nodes() const {
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree_[i] == 0) out.push_back(static_cast<std::int32_t>(i));
  }
  return out;
}

}  // namespace trinity::chrysalis
