#include "chrysalis/reads_to_transcripts.hpp"

#include <omp.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "chrysalis/parallel_loop.hpp"
#include "io/io_file.hpp"
#include "seq/fasta.hpp"
#include "seq/kmer.hpp"
#include "simpi/file_io.hpp"
#include "simpi/pack.hpp"
#include "trace/span_recorder.hpp"
#include "util/timer.hpp"

namespace trinity::chrysalis {

kmer::FlatKmerIndex<std::int32_t> build_bundle_kmer_map(
    const std::vector<seq::Sequence>& contigs, const ComponentSet& components, int k) {
  const seq::KmerCodec codec(k);
  // Reserve-from-count: total contig bases bound the distinct k-mers, so
  // the build loop never rehashes.
  std::size_t bases = 0;
  for (const auto& contig : contigs) bases += contig.bases.size();
  kmer::FlatKmerIndex<std::int32_t> bundle_of(bases);
  for (const auto& comp : components.components) {
    for (const auto contig_id : comp.contig_ids) {
      const auto& contig = contigs.at(static_cast<std::size_t>(contig_id));
      for (const auto& occ : codec.extract_canonical(contig.bases)) {
        const auto [it, inserted] = bundle_of.emplace(occ.code, comp.id);
        if (!inserted && comp.id < it->second) it->second = comp.id;
      }
    }
  }
  return bundle_of;
}

namespace detail {

ReadAssignment assign_read(const seq::Sequence& read, std::int64_t read_index,
                           const kmer::FlatKmerIndex<std::int32_t>& bundle_of, int k) {
  ReadAssignment out;
  out.read_index = read_index;

  const seq::KmerCodec codec(k);
  const auto occurrences = codec.extract_canonical(read.bases);
  if (occurrences.empty()) return out;

  // Tally shared k-mers per component; components are few per read, so a
  // small flat vector beats a hash map here.
  struct Tally {
    std::int32_t component;
    std::uint32_t count;
    std::size_t first;
    std::size_t last;  // last k-mer start position
  };
  std::vector<Tally> tallies;
  for (const auto& occ : occurrences) {
    const auto* component = bundle_of.lookup(occ.code);
    if (component == nullptr) continue;
    bool found = false;
    for (auto& t : tallies) {
      if (t.component == *component) {
        ++t.count;
        t.last = occ.position;
        found = true;
        break;
      }
    }
    if (!found) tallies.push_back({*component, 1, occ.position, occ.position});
  }
  if (tallies.empty()) return out;

  const auto best = std::min_element(
      tallies.begin(), tallies.end(), [](const Tally& a, const Tally& b) {
        if (a.count != b.count) return a.count > b.count;  // most shared k-mers
        return a.component < b.component;                  // deterministic tie
      });
  out.component = best->component;
  out.shared_kmers = best->count;
  out.region_begin = static_cast<std::uint32_t>(best->first);
  out.region_end = static_cast<std::uint32_t>(best->last + static_cast<std::size_t>(k));
  return out;
}

ReadAssignment assign_read_indexed(const seq::Sequence& read, std::int64_t read_index,
                                   const TranscriptIndex& index, int k,
                                   std::vector<std::int32_t>* labels_out) {
  ReadAssignment out;
  out.read_index = read_index;
  if (labels_out != nullptr) labels_out->clear();

  const seq::KmerCodec codec(k);
  const auto occurrences = codec.extract_canonical(read.bases);
  if (occurrences.empty()) return out;

  // Interval-intersection consensus: each hit interval carries its
  // component, so the tally loop is byte-for-byte the voting one with the
  // map probe swapped for the index probe — which is what makes the two
  // modes bit-identical.
  struct Tally {
    std::int32_t component;
    std::uint32_t count;
    std::size_t first;
    std::size_t last;  // last k-mer start position
  };
  std::vector<Tally> tallies;
  for (const auto& occ : occurrences) {
    const PathInterval* hit = index.lookup(occ.code);
    if (hit == nullptr) continue;
    bool found = false;
    for (auto& t : tallies) {
      if (t.component == hit->component) {
        ++t.count;
        t.last = occ.position;
        found = true;
        break;
      }
    }
    if (!found) tallies.push_back({hit->component, 1, occ.position, occ.position});
  }
  if (tallies.empty()) return out;

  if (labels_out != nullptr) {
    labels_out->reserve(tallies.size());
    for (const auto& t : tallies) labels_out->push_back(t.component);
    std::sort(labels_out->begin(), labels_out->end());
  }

  const auto best = std::min_element(
      tallies.begin(), tallies.end(), [](const Tally& a, const Tally& b) {
        if (a.count != b.count) return a.count > b.count;  // most shared k-mers
        return a.component < b.component;                  // deterministic tie
      });
  out.component = best->component;
  out.shared_kmers = best->count;
  out.region_begin = static_cast<std::uint32_t>(best->first);
  out.region_end = static_cast<std::uint32_t>(best->last + static_cast<std::size_t>(k));
  return out;
}

void write_assignments(const std::string& path,
                       const std::vector<ReadAssignment>& assignments) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_assignments: cannot open '" + path + "'");
  for (const auto& a : assignments) {
    out << a.read_index << '\t' << a.component << '\t' << a.shared_kmers << '\t'
        << a.region_begin << '\t' << a.region_end << '\n';
  }
  if (!out) throw std::runtime_error("write_assignments: write failure on '" + path + "'");
}

}  // namespace detail

namespace {

/// The assignment engine a run classifies with: exactly one of the two
/// pointers is set (R2TMode::kVote -> vote, kIndex -> index).
struct Assigner {
  const kmer::FlatKmerIndex<std::int32_t>* vote = nullptr;
  const TranscriptIndex* index = nullptr;
};

/// Whether an existing index file should be mmapped instead of building.
bool index_file_present(const ReadsToTranscriptsOptions& options) {
  return !options.index_path.empty() &&
         options.index_lifecycle != IndexLifecycle::kBuild &&
         ::access(options.index_path.c_str(), F_OK) == 0;
}

/// Resolves the index for an R2TMode::kIndex run: the serve layer's shared
/// copy, an mmap of the persisted file, or a fresh build (persisted when
/// `persist` — in hybrid runs only rank 0 saves, so concurrent ranks never
/// race on the atomic-write tmp file). Fills the timing fields the run
/// report surfaces. `load_existing` is the (collectively agreed, for
/// hybrid) result of index_file_present().
std::shared_ptr<const TranscriptIndex> acquire_index(
    const std::vector<seq::Sequence>& contigs, const ComponentSet& components,
    const ReadsToTranscriptsOptions& options, bool load_existing, bool persist,
    R2TTiming& timing) {
  if (options.shared_index != nullptr && options.shared_index->k() == options.k) {
    timing.index_source = "shared-cache";
    return options.shared_index;
  }
  if (options.index_lifecycle == IndexLifecycle::kLoad && options.index_path.empty()) {
    throw std::runtime_error(
        "ReadsToTranscripts: index lifecycle 'load' requires an index path");
  }
  if (options.index_lifecycle == IndexLifecycle::kLoad || load_existing) {
    util::Timer wall;
    auto loaded =
        std::make_shared<TranscriptIndex>(TranscriptIndex::load(options.index_path));
    timing.index_load_seconds = wall.seconds();
    if (loaded->k() == options.k) {
      timing.index_source = "mmap";
      return loaded;
    }
    if (options.index_lifecycle == IndexLifecycle::kLoad) {
      throw std::runtime_error("ReadsToTranscripts: index '" + options.index_path +
                               "' was built with k=" + std::to_string(loaded->k()) +
                               ", this run requires k=" + std::to_string(options.k) +
                               " (rebuild with --r2t-index build)");
    }
    timing.index_load_seconds = 0.0;  // kAuto: stale k, fall through and rebuild
  }
  util::Timer wall;
  auto built = std::make_shared<TranscriptIndex>(
      TranscriptIndex::build(contigs, components, options.k));
  timing.index_build_seconds = wall.seconds();
  timing.index_source = "built";
  if (persist && !options.index_path.empty()) built->save(options.index_path);
  return built;
}

/// Processes one in-memory chunk with an OpenMP team; returns the modeled
/// loop seconds and appends to `assignments`. In index mode `chunk_labels`
/// (when non-null) receives each read's equivalence-class label set.
double process_chunk(const std::vector<seq::Sequence>& chunk, std::int64_t base_index,
                     const Assigner& assigner, const ReadsToTranscriptsOptions& options,
                     int real_threads, std::vector<ReadAssignment>& assignments,
                     std::vector<std::vector<std::int32_t>>* chunk_labels = nullptr) {
  const std::size_t offset = assignments.size();
  assignments.resize(offset + chunk.size());
  if (chunk_labels != nullptr) chunk_labels->assign(chunk.size(), {});
  const std::vector<IndexRange> all{IndexRange{0, chunk.size()}};
  return timed_parallel_loop(
      all, real_threads, options.model_threads_per_rank,
      [&](std::size_t i) {
        const std::int64_t read_index = base_index + static_cast<std::int64_t>(i);
        // kernel_repeats: see the options doc; extra iterations are discarded.
        for (int rep = 1; rep < options.kernel_repeats; ++rep) {
          if (assigner.index != nullptr) {
            (void)detail::assign_read_indexed(chunk[i], read_index, *assigner.index,
                                              options.k);
          } else {
            (void)detail::assign_read(chunk[i], read_index, *assigner.vote, options.k);
          }
        }
        if (assigner.index != nullptr) {
          assignments[offset + i] = detail::assign_read_indexed(
              chunk[i], read_index, *assigner.index, options.k,
              chunk_labels != nullptr ? &(*chunk_labels)[i] : nullptr);
        } else {
          assignments[offset + i] =
              detail::assign_read(chunk[i], read_index, *assigner.vote, options.k);
        }
      },
      "r2t.chunk");
}

/// Double-buffered chunk source (options.overlap_io): a helper thread
/// parses the next chunk while the caller classifies the current one.
/// next() returns the chunk in file order — identical to calling
/// read_chunk() directly — plus the wall time the caller still spent
/// blocked on the parse (the unhidden I/O remainder); hidden_seconds() is
/// the parse CPU that ran behind compute. The reader is only ever touched
/// by one thread at a time: the helper finishes (get()) before the next
/// helper is launched.
class PrefetchingChunkSource {
 public:
  PrefetchingChunkSource(seq::FastaReader& reader, std::size_t max_reads)
      : reader_(reader), max_reads_(max_reads) {
    launch();
  }

  std::vector<seq::Sequence> next(double& blocked_wall) {
    trace::SpanScope span("r2t.prefetch.wait", trace::kCatLoop);
    util::Timer blocked;
    auto chunk = pending_.get();
    blocked_wall = blocked.seconds();
    if (!chunk.empty()) launch();
    return chunk;
  }

  [[nodiscard]] double hidden_seconds() const { return hidden_; }

 private:
  void launch() {
    pending_ = std::async(std::launch::async, [this] {
      util::ThreadCpuTimer cpu;
      auto chunk = reader_.read_chunk(max_reads_);
      hidden_ += cpu.seconds();
      return chunk;
    });
  }

  seq::FastaReader& reader_;
  std::size_t max_reads_;
  double hidden_ = 0.0;  // only written by the helper, read after its get()
  std::future<std::vector<seq::Sequence>> pending_;
};

std::string rank_output_path(const std::string& output_dir, int rank) {
  return output_dir + "/readsToComponents.rank" + std::to_string(rank) + ".tsv";
}

/// Concatenates per-rank files into the final output — the paper's "simple
/// cat command" by the master process. Returns wall seconds.
double concatenate_outputs(const std::vector<std::string>& inputs, const std::string& output) {
  util::Timer wall;
  std::ofstream out(output, std::ios::binary);
  if (!out) throw std::runtime_error("ReadsToTranscripts: cannot open '" + output + "'");
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("ReadsToTranscripts: cannot open '" + path + "'");
    // operator<<(streambuf*) sets failbit on an empty input; copy manually.
    char buffer[1 << 16];
    while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
      out.write(buffer, in.gcount());
    }
  }
  if (!out) throw std::runtime_error("ReadsToTranscripts: write failure on '" + output + "'");
  return wall.seconds();
}

void sort_by_read_index(std::vector<ReadAssignment>& assignments) {
  std::sort(assignments.begin(), assignments.end(),
            [](const ReadAssignment& a, const ReadAssignment& b) {
              return a.read_index < b.read_index;
            });
}

}  // namespace

R2TResult run_shared(const std::vector<seq::Sequence>& contigs, const ComponentSet& components,
                     const std::string& reads_path, const ReadsToTranscriptsOptions& options,
                     const std::string& output_dir) {
  const int threads = resolve_omp_threads(options.omp_threads, /*hybrid=*/false);
  R2TResult result;

  kmer::FlatKmerIndex<std::int32_t> bundle_of;
  Assigner assigner;
  if (options.mode == R2TMode::kIndex) {
    result.index = acquire_index(contigs, components, options, index_file_present(options),
                                 /*persist=*/true, result.timing);
    assigner.index = result.index.get();
    result.timing.setup_seconds =
        result.timing.index_build_seconds + result.timing.index_load_seconds;
  } else {
    util::ThreadCpuTimer setup_cpu;
    bundle_of = build_bundle_kmer_map(contigs, components, options.k);
    result.timing.setup_seconds = setup_cpu.seconds();
    assigner.vote = &bundle_of;
  }

  EquivalenceClassCounter eq_counter;
  std::vector<std::vector<std::int32_t>> chunk_labels;
  auto* labels = assigner.index != nullptr ? &chunk_labels : nullptr;
  const auto run_chunk = [&](const std::vector<seq::Sequence>& chunk,
                             std::int64_t base_index) {
    const double seconds = process_chunk(chunk, base_index, assigner, options, threads,
                                         result.assignments, labels);
    if (labels != nullptr) {
      for (const auto& set : chunk_labels) eq_counter.add(set);
    }
    return seconds;
  };

  double loop_seconds = 0.0;
  std::uint64_t chunks = 0;
  seq::FastaReader reader(reads_path, options.parse_policy);
  std::int64_t base_index = 0;
  if (options.overlap_io) {
    // Double-buffered: the next chunk parses on a helper thread while this
    // one classifies; only the residual blocked wall time costs the loop.
    PrefetchingChunkSource source(reader, options.max_mem_reads);
    for (;;) {
      double blocked = 0.0;
      const auto chunk = source.next(blocked);
      loop_seconds += blocked;
      result.timing.prefetch_wait_seconds += blocked;
      if (chunk.empty()) break;
      loop_seconds += run_chunk(chunk, base_index);
      base_index += static_cast<std::int64_t>(chunk.size());
      ++chunks;
    }
    result.timing.prefetch_hidden_seconds = source.hidden_seconds();
  } else {
    for (;;) {
      util::ThreadCpuTimer read_cpu;
      const auto chunk = reader.read_chunk(options.max_mem_reads);
      loop_seconds += read_cpu.seconds();
      if (chunk.empty()) break;
      loop_seconds += run_chunk(chunk, base_index);
      base_index += static_cast<std::int64_t>(chunk.size());
      ++chunks;
    }
  }
  result.parse = reader.diagnostics();
  result.timing.main_loop.seconds = {loop_seconds};
  result.timing.rank_chunks = {chunks};
  result.timing.rank_reads = {result.assignments.size()};
  if (assigner.index != nullptr) result.eq_classes = eq_counter.classes();

  if (!output_dir.empty()) {
    result.merged_output_path = output_dir + "/readsToComponents.out.tsv";
    detail::write_assignments(result.merged_output_path, result.assignments);
    if (assigner.index != nullptr) {
      io::write_file(output_dir + "/eq_classes.tsv", eq_counter.serialize());
    }
  }
  return result;
}

R2TResult run_hybrid(simpi::Context& ctx, const std::vector<seq::Sequence>& contigs,
                     const ComponentSet& components, const std::string& reads_path,
                     const ReadsToTranscriptsOptions& options, const std::string& output_dir) {
  const int threads = resolve_omp_threads(options.omp_threads, /*hybrid=*/true);
  const double comm_before = ctx.comm_seconds();
  R2TResult result;

  // Setup stays OpenMP-only and runs redundantly per rank ("we have not
  // converted this to a hybrid implementation yet" — paper, Section V.B).
  // Index mode breaks the redundancy on the warm path: every rank mmaps
  // the same file, and cold builds persist from rank 0 only.
  kmer::FlatKmerIndex<std::int32_t> bundle_of;
  Assigner assigner;
  double my_setup = 0.0;
  if (options.mode == R2TMode::kIndex) {
    // Load-vs-build is decided once at rank 0 and broadcast: a per-rank
    // existence check could race with rank 0's save under kAuto, leaving
    // ranks disagreeing on index_source.
    std::vector<std::uint8_t> flag{
        static_cast<std::uint8_t>(ctx.rank() == 0 && index_file_present(options) ? 1 : 0)};
    ctx.bcast(flag, 0);
    result.index = acquire_index(contigs, components, options, flag[0] != 0,
                                 /*persist=*/ctx.rank() == 0, result.timing);
    assigner.index = result.index.get();
    my_setup = result.timing.index_build_seconds + result.timing.index_load_seconds;
  } else {
    util::ThreadCpuTimer setup_cpu;
    bundle_of = build_bundle_kmer_map(contigs, components, options.k);
    my_setup = setup_cpu.seconds();
    assigner.vote = &bundle_of;
  }

  std::vector<ReadAssignment> my_assignments;
  EquivalenceClassCounter my_eq;
  std::vector<std::vector<std::int32_t>> chunk_labels;
  auto* labels = assigner.index != nullptr ? &chunk_labels : nullptr;
  const auto run_chunk = [&](const std::vector<seq::Sequence>& chunk,
                             std::int64_t base_index) {
    const double seconds = process_chunk(chunk, base_index, assigner, options, threads,
                                         my_assignments, labels);
    if (labels != nullptr) {
      for (const auto& set : chunk_labels) my_eq.add(set);
    }
    return seconds;
  };
  double my_loop = 0.0;
  std::uint64_t my_chunks = 0;
  constexpr int kChunkTag = 7;

  double my_prefetch_hidden = 0.0;
  double my_prefetch_wait = 0.0;

  if (options.strategy == R2TStrategy::kRedundantStreaming) {
    // Every rank streams the whole file and keeps chunks where
    // chunk_index mod size == rank; discarded chunks still cost the read.
    // With overlap_io the next chunk parses on a helper thread while this
    // rank classifies its owned chunk, so the redundant read mostly hides
    // behind compute and only the residual blocked wall time is charged.
    seq::FastaReader reader(reads_path, options.parse_policy);
    std::int64_t base_index = 0;
    std::int64_t chunk_index = 0;
    if (options.overlap_io) {
      PrefetchingChunkSource source(reader, options.max_mem_reads);
      for (;;) {
        double blocked = 0.0;
        const auto chunk = source.next(blocked);
        my_loop += blocked;
        my_prefetch_wait += blocked;
        if (chunk.empty()) break;
        if (chunk_index % ctx.size() == ctx.rank()) {
          my_loop += run_chunk(chunk, base_index);
          ++my_chunks;
        }
        base_index += static_cast<std::int64_t>(chunk.size());
        ++chunk_index;
      }
      my_prefetch_hidden = source.hidden_seconds();
    } else {
      for (;;) {
        util::ThreadCpuTimer read_cpu;
        const auto chunk = reader.read_chunk(options.max_mem_reads);
        my_loop += read_cpu.seconds();
        if (chunk.empty()) break;
        if (chunk_index % ctx.size() == ctx.rank()) {
          my_loop += run_chunk(chunk, base_index);
          ++my_chunks;
        }
        base_index += static_cast<std::int64_t>(chunk.size());
        ++chunk_index;
      }
    }
    result.parse = reader.diagnostics();
  } else {
    // Master/slave ablation: rank 0 reads and ships chunks round-robin;
    // an empty payload is the end-of-stream sentinel.
    if (ctx.rank() == 0) {
      seq::FastaReader reader(reads_path, options.parse_policy);
      std::int64_t base_index = 0;
      std::int64_t chunk_index = 0;
      for (;;) {
        util::ThreadCpuTimer read_cpu;
        const auto chunk = reader.read_chunk(options.max_mem_reads);
        my_loop += read_cpu.seconds();
        if (chunk.empty()) break;
        const int dest = static_cast<int>(chunk_index % ctx.size());
        if (dest == 0) {
          my_loop += run_chunk(chunk, base_index);
          ++my_chunks;
        } else {
          std::vector<std::string> wire;
          wire.reserve(chunk.size() + 1);
          wire.push_back(std::to_string(base_index));
          for (const auto& read : chunk) wire.push_back(read.bases);
          ctx.send_bytes(dest, kChunkTag, simpi::pack_strings(wire));
        }
        base_index += static_cast<std::int64_t>(chunk.size());
        ++chunk_index;
      }
      for (int r = 1; r < ctx.size(); ++r) {
        ctx.send_bytes(r, kChunkTag, simpi::pack_strings({}));
      }
      result.parse = reader.diagnostics();
    } else {
      for (;;) {
        const auto msg = ctx.recv_bytes(0, kChunkTag);
        const auto wire = simpi::unpack_strings(msg.payload);
        if (wire.empty()) break;
        const std::int64_t base_index = std::stoll(wire.front());
        std::vector<seq::Sequence> chunk(wire.size() - 1);
        for (std::size_t i = 1; i < wire.size(); ++i) chunk[i - 1].bases = wire[i];
        my_loop += run_chunk(chunk, base_index);
        ++my_chunks;
      }
    }
  }

  // Output: per-rank files + master concatenation (the paper's scheme) or
  // a collective ordered write (its MPI-I/O future work).
  double concat_seconds = 0.0;
  if (!output_dir.empty()) {
    sort_by_read_index(my_assignments);
    result.merged_output_path = output_dir + "/readsToComponents.out.tsv";
    if (options.output_mode == R2TOutputMode::kPerRankConcat) {
      const std::string my_path = rank_output_path(output_dir, ctx.rank());
      detail::write_assignments(my_path, my_assignments);
      ctx.barrier();
      if (ctx.rank() == 0) {
        std::vector<std::string> inputs;
        for (int r = 0; r < ctx.size(); ++r) {
          inputs.push_back(rank_output_path(output_dir, r));
        }
        concat_seconds = concatenate_outputs(inputs, result.merged_output_path);
      }
      std::vector<double> concat_wire{concat_seconds};
      ctx.bcast(concat_wire, 0);
      concat_seconds = concat_wire[0];
    } else {
      // Collective write: serialize locally, then one shared-file write.
      // Synchronize first so the timer measures the write itself, not the
      // wait for slower ranks still in their loops.
      ctx.barrier();
      util::Timer wall;
      std::ostringstream body;
      for (const auto& a : my_assignments) {
        body << a.read_index << '\t' << a.component << '\t' << a.shared_kmers << '\t'
             << a.region_begin << '\t' << a.region_end << '\n';
      }
      const std::string data = body.str();
      simpi::write_file_ordered(ctx, result.merged_output_path, data);
      concat_seconds = ctx.allreduce_max(wall.seconds());
    }
  }

  // Pool assignments so every rank returns the full, sorted result.
  const std::uint64_t my_assignment_bytes = my_assignments.size() * sizeof(ReadAssignment);
  result.assignments = ctx.allgatherv(my_assignments);
  sort_by_read_index(result.assignments);

  // Pool equivalence-class counters the same way (variable-length TSV wire
  // over an Allgatherv, split by the per-rank counts): every rank ends up
  // with the identical global class table.
  if (assigner.index != nullptr) {
    const std::string wire = my_eq.serialize();
    const std::vector<char> wire_bytes(wire.begin(), wire.end());
    std::vector<std::size_t> counts;
    const auto pooled = ctx.allgatherv(wire_bytes, &counts);
    EquivalenceClassCounter global;
    std::size_t offset = 0;
    for (const auto count : counts) {
      global.merge(
          EquivalenceClassCounter::deserialize(std::string(pooled.data() + offset, count)));
      offset += count;
    }
    result.eq_classes = global.classes();
    if (!output_dir.empty() && ctx.rank() == 0) {
      io::write_file(output_dir + "/eq_classes.tsv", global.serialize());
    }
  }

  result.timing.setup_seconds = ctx.allreduce_max(my_setup);
  result.timing.index_build_seconds = ctx.allreduce_max(result.timing.index_build_seconds);
  result.timing.index_load_seconds = ctx.allreduce_max(result.timing.index_load_seconds);
  result.timing.main_loop.seconds = ctx.allgatherv(std::vector<double>{my_loop});
  result.timing.rank_chunks = ctx.allgatherv(std::vector<std::uint64_t>{my_chunks});
  result.timing.rank_reads =
      ctx.allgatherv(std::vector<std::uint64_t>{my_assignment_bytes / sizeof(ReadAssignment)});
  result.timing.assignment_bytes_contributed =
      ctx.allgatherv(std::vector<std::uint64_t>{my_assignment_bytes});
  result.timing.assignment_bytes_pooled =
      result.assignments.size() * sizeof(ReadAssignment);
  result.timing.prefetch_hidden_seconds = ctx.allreduce_max(my_prefetch_hidden);
  result.timing.prefetch_wait_seconds = ctx.allreduce_max(my_prefetch_wait);
  result.timing.concat_seconds = concat_seconds;
  result.timing.comm_seconds = ctx.allreduce_max(ctx.comm_seconds() - comm_before);
  return result;
}

}  // namespace trinity::chrysalis
