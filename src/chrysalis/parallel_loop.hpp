#pragma once
// Shared machinery for the hybrid loops: OpenMP team sizing, per-rank index
// ranges, and the virtual-time measurement rule.
//
// Measurement rule: a loop's virtual duration on one simulated node is the
// CPU work its OpenMP team actually performed (per-thread CPU clocks,
// summed) divided by the modeled per-node thread count. Intra-node dynamic
// scheduling divides work almost evenly — the premise the paper inherits
// from the existing OpenMP implementation — so the quotient is the modeled
// loop time, while imbalance ACROSS ranks is preserved exactly because each
// rank's work is measured rather than modeled.

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "chrysalis/distribution.hpp"
#include "trace/span_recorder.hpp"
#include "util/timer.hpp"

namespace trinity::chrysalis {

/// Real OpenMP team size: explicit request wins; hybrid ranks default to
/// one worker each (ranks are already threads — avoid quadratic
/// oversubscription of the host), shared runs use the whole machine.
inline int resolve_omp_threads(int requested, bool hybrid) {
  if (requested > 0) return requested;
  return hybrid ? 1 : omp_get_max_threads();
}

/// Runs `body(index)` over the given ranges with an OpenMP team of
/// `real_threads` and returns the team's summed CPU seconds divided by
/// `model_threads` — the loop's virtual duration on one simulated node.
///
/// When `trace_name` is set and a trace::SpanRecorder is installed, each
/// team thread records one span per range (category "loop") with the range
/// index and the number of dynamic-schedule items it claimed, making
/// intra-rank scheduling behavior visible on the timeline. The rank is read
/// from trace::current_rank() before the parallel region forks, because
/// OpenMP workers do not inherit the rank thread's thread_locals.
template <typename Body>
double timed_parallel_loop(const std::vector<IndexRange>& ranges, int real_threads,
                           int model_threads, Body&& body,
                           const char* trace_name = nullptr) {
  double work_cpu = 0.0;
  const bool traced = trace_name != nullptr && trace::enabled();
  const int trace_rank = traced ? trace::current_rank() : -1;
  // One parallel region for the whole loop: each thread's CPU clock is read
  // exactly once, so the clock's coarse tick (10 ms on some kernels) is
  // paid once per loop instead of once per chunk.
#pragma omp parallel num_threads(real_threads) reduction(+ : work_cpu)
  {
    util::ThreadCpuTimer cpu;
    const int tid = omp_get_thread_num();
    int range_index = 0;
    for (const auto& range : ranges) {
      std::optional<trace::SpanScope> span;
      if (traced) span.emplace(trace_name, trace::kCatLoop, trace_rank, tid);
      std::int64_t items = 0;
      const auto begin = static_cast<std::int64_t>(range.begin);
      const auto end = static_cast<std::int64_t>(range.end);
#pragma omp for schedule(dynamic)
      for (std::int64_t i = begin; i < end; ++i) {
        body(static_cast<std::size_t>(i));
        ++items;
      }
      if (span) {
        span->arg("range", range_index);
        span->arg("items", static_cast<double>(items));
      }
      ++range_index;
    }
    work_cpu += cpu.seconds();
  }
  return work_cpu / static_cast<double>(std::max(model_threads, 1));
}

}  // namespace trinity::chrysalis
