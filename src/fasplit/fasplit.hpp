#pragma once
// fasplit: the PyFasta substitute.
//
// Section III.A of the paper: "The Fasta file was partitioned using the
// PyFasta python module, which evenly splits the target sequences amongst
// the rank nodes for parallel alignment processing." PyFasta's split is a
// single-threaded pass; the paper's Figure 10 explicitly measures it as the
// dominant overhead of the MPI Bowtie step. partition_balanced below is
// deliberately serial for the same reason.

#include <cstddef>
#include <string>
#include <vector>

#include "seq/sequence.hpp"

namespace trinity::fasplit {

/// Assignment of sequences to parts: part_of[i] is the part index of
/// sequence i, and part_bases[p] the total bases in part p.
struct Partition {
  std::vector<int> part_of;
  std::vector<std::size_t> part_bases;
  int parts = 0;
};

/// Greedy balanced partition of `seqs` into `parts` groups by total bases
/// (longest-processing-time heuristic: sequences descending by length, each
/// assigned to the currently lightest part). Deterministic.
/// Throws std::invalid_argument when parts < 1.
Partition partition_balanced(const std::vector<seq::Sequence>& seqs, int parts);

/// Materializes part `p` of a partition as a sequence vector, preserving
/// input order within the part.
std::vector<seq::Sequence> extract_part(const std::vector<seq::Sequence>& seqs,
                                        const Partition& partition, int p);

/// End-to-end file split: reads `fasta_path`, partitions into `parts`, and
/// writes `<out_prefix>.<p>.fa` for each part. Returns the written paths.
/// This is the serial "PyFasta" cost measured in Figure 10.
std::vector<std::string> split_fasta_file(const std::string& fasta_path,
                                          const std::string& out_prefix, int parts);

/// Imbalance ratio of a partition: max part bases / mean part bases.
/// 1.0 is perfect balance; empty partitions yield 0.
double imbalance(const Partition& partition);

}  // namespace trinity::fasplit
