#include "fasplit/fasplit.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "seq/fasta.hpp"

namespace trinity::fasplit {

Partition partition_balanced(const std::vector<seq::Sequence>& seqs, int parts) {
  if (parts < 1) throw std::invalid_argument("partition_balanced: parts must be >= 1");
  Partition out;
  out.parts = parts;
  out.part_of.assign(seqs.size(), 0);
  out.part_bases.assign(static_cast<std::size_t>(parts), 0);

  // Longest-processing-time: visit sequences in descending length and put
  // each on the lightest part. A min-heap of (bases, part) keeps this
  // O(n log p); ties break toward the lower part index for determinism.
  std::vector<std::size_t> order(seqs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return seqs[a].bases.size() > seqs[b].bases.size();
  });

  using Slot = std::pair<std::size_t, int>;  // (bases, part index)
  auto cmp = [](const Slot& a, const Slot& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  };
  std::priority_queue<Slot, std::vector<Slot>, decltype(cmp)> heap(cmp);
  for (int p = 0; p < parts; ++p) heap.push({0, p});

  for (const std::size_t i : order) {
    auto [bases, p] = heap.top();
    heap.pop();
    out.part_of[i] = p;
    bases += seqs[i].bases.size();
    out.part_bases[static_cast<std::size_t>(p)] = bases;
    heap.push({bases, p});
  }
  return out;
}

std::vector<seq::Sequence> extract_part(const std::vector<seq::Sequence>& seqs,
                                        const Partition& partition, int p) {
  std::vector<seq::Sequence> out;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    if (partition.part_of[i] == p) out.push_back(seqs[i]);
  }
  return out;
}

std::vector<std::string> split_fasta_file(const std::string& fasta_path,
                                          const std::string& out_prefix, int parts) {
  const auto seqs = seq::read_all(fasta_path);
  const auto partition = partition_balanced(seqs, parts);
  std::vector<std::string> paths;
  paths.reserve(static_cast<std::size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    const std::string path = out_prefix + "." + std::to_string(p) + ".fa";
    seq::write_fasta(path, extract_part(seqs, partition, p));
    paths.push_back(path);
  }
  return paths;
}

double imbalance(const Partition& partition) {
  if (partition.part_bases.empty()) return 0.0;
  const std::size_t max_bases =
      *std::max_element(partition.part_bases.begin(), partition.part_bases.end());
  const std::size_t total =
      std::accumulate(partition.part_bases.begin(), partition.part_bases.end(), std::size_t{0});
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / static_cast<double>(partition.part_bases.size());
  return static_cast<double>(max_bases) / mean;
}

}  // namespace trinity::fasplit
