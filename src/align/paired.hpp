#pragma once
// Paired-end alignment: mates aligned jointly with insert-size and
// orientation constraints, as Bowtie does when Trinity feeds it left/right
// read files. Proper pairs anchor the Chrysalis scaffolding step.

#include <cstddef>
#include <vector>

#include "align/aligner.hpp"
#include "seq/sequence.hpp"

namespace trinity::align {

/// Pairing constraints.
struct PairingOptions {
  std::size_t min_insert = 50;    ///< outermost span lower bound
  std::size_t max_insert = 800;   ///< outermost span upper bound
};

/// One fragment's joint alignment.
struct PairAlignment {
  SamRecord mate1;
  SamRecord mate2;
  bool proper = false;       ///< same target, opposite strands, insert in range
  std::size_t insert = 0;    ///< outermost span when proper
};

/// Aligns a mate pair jointly: both mates are aligned independently, then
/// the pair is flagged proper when they land on the same target on
/// opposite strands within the insert window. Mate records always carry
/// the individual best placements (like Bowtie's unpaired fallback).
PairAlignment align_pair(const SeedExtendAligner& aligner, const seq::Sequence& mate1,
                         const seq::Sequence& mate2, const PairingOptions& options = {});

/// Pairs up a read vector by mate naming convention ("x/1"+"x/2" etc.) and
/// aligns each fragment; reads without a mate are aligned singly and
/// reported with proper == false and an empty mate2 record. Output order
/// follows the first mate's position in `reads`.
std::vector<PairAlignment> align_pairs(const SeedExtendAligner& aligner,
                                       const std::vector<seq::Sequence>& reads,
                                       const PairingOptions& options = {});

/// Fraction of fragments flagged proper (a standard library-QC metric).
double proper_pair_rate(const std::vector<PairAlignment>& pairs);

}  // namespace trinity::align
