#pragma once
// SAM parsing: the inverse of write_sam, so downstream steps (scaffolding,
// the staged CLI) can consume an existing alignment file instead of
// realigning — exactly how Chrysalis consumes Bowtie's output in Trinity.

#include <string>
#include <vector>

#include "align/aligner.hpp"
#include "seq/sequence.hpp"

namespace trinity::align {

/// Result of parsing a SAM file.
struct SamFile {
  std::vector<seq::Sequence> references;  ///< from @SQ headers (bases empty)
  std::vector<SamRecord> records;
};

/// Parses a SAM file produced by write_sam / merge_sam_files (and any SAM
/// restricted to the same columns). Unmapped records (flag 0x4) come back
/// with target_id == -1. target_id indexes `references`. Throws
/// std::runtime_error on malformed rows, unknown reference names, or
/// coordinates outside the reference length.
SamFile read_sam(const std::string& path);

}  // namespace trinity::align
