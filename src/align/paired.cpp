#include "align/paired.hpp"

#include <algorithm>
#include <unordered_map>

#include "chrysalis/scaffold.hpp"

namespace trinity::align {

PairAlignment align_pair(const SeedExtendAligner& aligner, const seq::Sequence& mate1,
                         const seq::Sequence& mate2, const PairingOptions& options) {
  PairAlignment out;
  out.mate1 = aligner.align_read(mate1);
  out.mate2 = aligner.align_read(mate2);
  if (!out.mate1.aligned() || !out.mate2.aligned()) return out;
  if (out.mate1.target_id != out.mate2.target_id) return out;
  if (out.mate1.reverse_strand == out.mate2.reverse_strand) return out;

  const std::size_t begin = std::min(out.mate1.pos, out.mate2.pos);
  const std::size_t end = std::max(out.mate1.pos + out.mate1.read_length,
                                   out.mate2.pos + out.mate2.read_length);
  const std::size_t insert = end - begin;
  if (insert < options.min_insert || insert > options.max_insert) return out;

  // The forward mate must sit upstream of the reverse mate (FR orientation).
  const SamRecord& fwd = out.mate1.reverse_strand ? out.mate2 : out.mate1;
  const SamRecord& rev = out.mate1.reverse_strand ? out.mate1 : out.mate2;
  if (fwd.pos > rev.pos) return out;

  out.proper = true;
  out.insert = insert;
  return out;
}

std::vector<PairAlignment> align_pairs(const SeedExtendAligner& aligner,
                                       const std::vector<seq::Sequence>& reads,
                                       const PairingOptions& options) {
  // Group mates by fragment name, remembering first-mate order.
  std::unordered_map<std::string, std::pair<const seq::Sequence*, const seq::Sequence*>>
      fragments;
  std::vector<std::string> order;
  std::vector<const seq::Sequence*> singles;
  for (const auto& read : reads) {
    int mate = 0;
    const std::string frag = chrysalis::mate_fragment_name(read.name, &mate);
    if (frag.empty()) {
      singles.push_back(&read);
      continue;
    }
    auto [it, inserted] = fragments.emplace(
        frag, std::pair<const seq::Sequence*, const seq::Sequence*>{nullptr, nullptr});
    if (inserted) order.push_back(frag);
    (mate == 1 ? it->second.first : it->second.second) = &read;
  }

  std::vector<PairAlignment> out;
  out.reserve(order.size() + singles.size());
  for (const auto& frag : order) {
    const auto& mates = fragments.at(frag);
    if (mates.first != nullptr && mates.second != nullptr) {
      out.push_back(align_pair(aligner, *mates.first, *mates.second, options));
    } else {
      const seq::Sequence* lone = mates.first ? mates.first : mates.second;
      PairAlignment single;
      single.mate1 = aligner.align_read(*lone);
      out.push_back(std::move(single));
    }
  }
  for (const auto* read : singles) {
    PairAlignment single;
    single.mate1 = aligner.align_read(*read);
    out.push_back(std::move(single));
  }
  return out;
}

double proper_pair_rate(const std::vector<PairAlignment>& pairs) {
  if (pairs.empty()) return 0.0;
  const auto proper = static_cast<double>(
      std::count_if(pairs.begin(), pairs.end(), [](const PairAlignment& p) { return p.proper; }));
  return proper / static_cast<double>(pairs.size());
}

}  // namespace trinity::align
