#include "align/sam_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace trinity::align {

SamFile read_sam(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_sam: cannot open '" + path + "'");

  SamFile out;
  std::unordered_map<std::string, std::int32_t> ref_ids;
  std::unordered_map<std::string, std::size_t> ref_lengths;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '@') {
      if (line.rfind("@SQ", 0) == 0) {
        // Tab-separated tags: SN:<name> LN:<length>.
        std::istringstream row(line);
        std::string field;
        std::string name;
        std::size_t length = 0;
        while (std::getline(row, field, '\t')) {
          if (field.rfind("SN:", 0) == 0) name = field.substr(3);
          if (field.rfind("LN:", 0) == 0) length = std::stoul(field.substr(3));
        }
        if (name.empty()) throw std::runtime_error("read_sam: @SQ without SN in '" + path + "'");
        ref_ids.emplace(name, static_cast<std::int32_t>(out.references.size()));
        ref_lengths.emplace(name, length);
        out.references.push_back({name, ""});
      }
      continue;
    }

    std::istringstream row(line);
    SamRecord rec;
    int flag = 0;
    std::string rname;
    std::size_t pos1 = 0;  // SAM is 1-based
    std::string mapq, cigar;
    if (!(row >> rec.read_name >> flag >> rname >> pos1 >> mapq >> cigar)) {
      throw std::runtime_error("read_sam: malformed record in '" + path + "'");
    }
    if ((flag & 0x4) != 0 || rname == "*") {
      out.records.push_back(std::move(rec));  // unmapped
      continue;
    }
    const auto it = ref_ids.find(rname);
    if (it == ref_ids.end()) {
      throw std::runtime_error("read_sam: unknown reference '" + rname + "' in '" + path + "'");
    }
    rec.target_id = it->second;
    rec.target_name = rname;
    rec.pos = pos1 - 1;
    rec.reverse_strand = (flag & 0x10) != 0;
    // Our writer emits "<len>M" cigars; recover the read length from it.
    if (!cigar.empty() && cigar.back() == 'M') {
      rec.read_length = std::stoul(cigar.substr(0, cigar.size() - 1));
    }
    const std::size_t ref_len = ref_lengths.at(rname);
    if (ref_len > 0 && rec.pos + rec.read_length > ref_len) {
      throw std::runtime_error("read_sam: alignment beyond reference end in '" + path + "'");
    }
    // Optional NM:i:<n> tag carries the mismatch count.
    std::string tag;
    while (row >> tag) {
      if (tag.rfind("NM:i:", 0) == 0) rec.mismatches = std::stoi(tag.substr(5));
    }
    out.records.push_back(std::move(rec));
  }
  return out;
}

}  // namespace trinity::align
