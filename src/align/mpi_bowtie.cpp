#include "align/mpi_bowtie.hpp"

#include <cstdint>
#include <tuple>
#include <type_traits>

#include "fasplit/fasplit.hpp"
#include "util/timer.hpp"

namespace trinity::align {

namespace {

/// Wire format for one aligned read gathered at the merge rank.
struct WireRecord {
  std::uint64_t read_index;
  std::int32_t global_contig_id;
  std::int32_t mismatches;
  std::uint64_t pos;
  std::uint8_t reverse_strand;
  std::uint8_t pad[7];
};
static_assert(std::is_trivially_copyable_v<WireRecord>);

}  // namespace

namespace {

/// Read-split scheme: rank-local block of reads against the full contig
/// index (replicated per rank).
DistributedBowtieResult distributed_bowtie_read_split(
    simpi::Context& ctx, const std::vector<seq::Sequence>& contigs,
    const std::vector<seq::Sequence>& reads, const AlignerOptions& options) {
  DistributedBowtieResult result;

  // No serial split phase: the read partition is index arithmetic.
  const std::size_t n = reads.size();
  const auto nranks = static_cast<std::size_t>(ctx.size());
  const auto rank = static_cast<std::size_t>(ctx.rank());
  const std::size_t base = n / nranks;
  const std::size_t extra = n % nranks;
  const std::size_t begin = rank * base + std::min(rank, extra);
  const std::size_t end = begin + base + (rank < extra ? 1 : 0);

  util::ThreadCpuTimer align_timer;
  const ContigIndex index(contigs, options);  // replicated full index
  const SeedExtendAligner aligner(index);
  const std::vector<seq::Sequence> my_reads(reads.begin() + static_cast<std::ptrdiff_t>(begin),
                                            reads.begin() + static_cast<std::ptrdiff_t>(end));
  const auto local_records = aligner.align_all(my_reads);
  const double align_s =
      align_timer.seconds() / static_cast<double>(std::max(options.model_threads_per_rank, 1));
  result.timing.align_seconds_max = ctx.allreduce_max(align_s);
  result.timing.align_seconds_min = ctx.allreduce_min(align_s);

  // Gather: each read has exactly one owner, so no best-hit merge needed.
  std::vector<WireRecord> wire;
  for (std::size_t i = 0; i < local_records.size(); ++i) {
    const auto& r = local_records[i];
    if (!r.aligned()) continue;
    WireRecord w{};
    w.read_index = begin + i;
    w.global_contig_id = r.target_id;
    w.mismatches = r.mismatches;
    w.pos = r.pos;
    w.reverse_strand = r.reverse_strand ? 1 : 0;
    wire.push_back(w);
  }
  const auto gathered = ctx.gatherv(wire, 0);

  std::vector<double> merge_s{0.0};
  if (ctx.rank() == 0) {
    util::ThreadCpuTimer merge_timer;
    std::vector<SamRecord> merged(reads.size());
    for (std::size_t i = 0; i < reads.size(); ++i) {
      merged[i].read_name = reads[i].name;
      merged[i].read_length = reads[i].bases.size();
    }
    for (const auto& part : gathered) {
      for (const auto& w : part) {
        auto& rec = merged[static_cast<std::size_t>(w.read_index)];
        rec.target_id = w.global_contig_id;
        rec.target_name = contigs[static_cast<std::size_t>(w.global_contig_id)].name;
        rec.pos = w.pos;
        rec.reverse_strand = w.reverse_strand != 0;
        rec.mismatches = w.mismatches;
      }
    }
    result.records = std::move(merged);
    merge_s[0] = merge_timer.seconds();
  }
  ctx.bcast(merge_s, 0);
  result.timing.merge_seconds = merge_s[0];
  return result;
}

}  // namespace

DistributedBowtieResult distributed_bowtie(simpi::Context& ctx,
                                           const std::vector<seq::Sequence>& contigs,
                                           const std::vector<seq::Sequence>& reads,
                                           const AlignerOptions& options, BowtieSplit split) {
  if (split == BowtieSplit::kReads) {
    return distributed_bowtie_read_split(ctx, contigs, reads, options);
  }
  DistributedBowtieResult result;

  // Phase 1 — serial target split on rank 0 (the PyFasta step of Fig 10).
  std::vector<int> part_of;
  std::vector<double> split_s{0.0};
  if (ctx.rank() == 0) {
    util::ThreadCpuTimer timer;
    part_of = fasplit::partition_balanced(contigs, ctx.size()).part_of;
    split_s[0] = timer.seconds();
  }
  ctx.bcast(part_of, 0);
  ctx.bcast(split_s, 0);
  result.timing.split_seconds = split_s[0];

  // Phase 2 — per-rank index build + alignment of the full read set
  // against this rank's contig slice.
  util::ThreadCpuTimer align_timer;
  std::vector<seq::Sequence> my_contigs;
  std::vector<std::int32_t> local_to_global;
  for (std::size_t c = 0; c < contigs.size(); ++c) {
    if (part_of[c] == ctx.rank()) {
      my_contigs.push_back(contigs[c]);
      local_to_global.push_back(static_cast<std::int32_t>(c));
    }
  }
  const ContigIndex index(std::move(my_contigs), options);
  const SeedExtendAligner aligner(index);
  const auto local_records = aligner.align_all(reads);
  const double align_s =
      align_timer.seconds() / static_cast<double>(std::max(options.model_threads_per_rank, 1));
  result.timing.align_seconds_max = ctx.allreduce_max(align_s);
  result.timing.align_seconds_min = ctx.allreduce_min(align_s);

  // Phase 3 — gather aligned records at rank 0 and merge: for each read,
  // keep the best placement across slices (fewest mismatches, then lowest
  // global contig id / position / strand), which is what a single-node
  // best-hit Bowtie run would have reported.
  std::vector<WireRecord> wire;
  for (std::size_t i = 0; i < local_records.size(); ++i) {
    const auto& r = local_records[i];
    if (!r.aligned()) continue;
    WireRecord w{};
    w.read_index = i;
    w.global_contig_id = local_to_global[static_cast<std::size_t>(r.target_id)];
    w.mismatches = r.mismatches;
    w.pos = r.pos;
    w.reverse_strand = r.reverse_strand ? 1 : 0;
    wire.push_back(w);
  }
  const auto gathered = ctx.gatherv(wire, 0);

  std::vector<double> merge_s{0.0};
  if (ctx.rank() == 0) {
    util::ThreadCpuTimer merge_timer;
    std::vector<SamRecord> merged(reads.size());
    for (std::size_t i = 0; i < reads.size(); ++i) {
      merged[i].read_name = reads[i].name;
      merged[i].read_length = reads[i].bases.size();
    }
    for (const auto& part : gathered) {
      for (const auto& w : part) {
        auto& best = merged[static_cast<std::size_t>(w.read_index)];
        const bool better =
            !best.aligned() || w.mismatches < best.mismatches ||
            (w.mismatches == best.mismatches &&
             std::tuple<std::int32_t, std::uint64_t, std::uint8_t>(
                 w.global_contig_id, w.pos, w.reverse_strand) <
                 std::tuple<std::int32_t, std::uint64_t, std::uint8_t>(
                     best.target_id, best.pos, best.reverse_strand ? 1 : 0));
        if (better) {
          best.target_id = w.global_contig_id;
          best.target_name = contigs[static_cast<std::size_t>(w.global_contig_id)].name;
          best.pos = w.pos;
          best.reverse_strand = w.reverse_strand != 0;
          best.mismatches = w.mismatches;
        }
      }
    }
    result.records = std::move(merged);
    merge_s[0] = merge_timer.seconds();
  }
  ctx.bcast(merge_s, 0);
  result.timing.merge_seconds = merge_s[0];
  return result;
}

}  // namespace trinity::align
