#pragma once
// Seed-and-extend short-read aligner: the Bowtie substitute.
//
// Chrysalis's first step aligns every input read against the Inchworm
// contigs with Bowtie. This module plays that role: a k-mer seed index over
// the target contigs plus ungapped extension with a mismatch budget —
// Bowtie's "-v <n>" alignment mode in spirit. The distributed driver in
// align/mpi_bowtie.hpp reproduces the paper's parallelization *around* the
// aligner (split targets with fasplit, align on every rank, merge SAM).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/sequence.hpp"

namespace trinity::align {

/// Aligner parameters.
struct AlignerOptions {
  int seed_length = 16;             ///< k of the seed index
  int max_mismatches = 2;           ///< Bowtie-style -v budget
  std::size_t max_hits_per_seed = 64;  ///< skip hyper-repetitive seeds
  int num_threads = 0;              ///< 0 = OpenMP default
  /// Cost-model calibration for benchmarks: repeat the per-read kernel to
  /// emulate Bowtie's heavier per-read cost (quality-aware backtracking vs
  /// this reproduction's exact-seed check). Outputs unchanged; leave at 1
  /// for normal use.
  int kernel_repeats = 1;
  /// Simulated threads per node for the distributed driver's virtual-time
  /// accounting (the paper ran Bowtie with 16 threads per node). Per-rank
  /// alignment CPU is divided by this. Must match the convention of the
  /// surrounding experiment (the figure benches use 1 = node-count
  /// scaling).
  int model_threads_per_rank = 16;
};

/// One alignment in SAM spirit. pos is 0-based here; the SAM writer emits
/// 1-based coordinates.
struct SamRecord {
  std::string read_name;
  std::int32_t target_id = -1;   ///< index into the aligner's contig set
  std::string target_name;
  std::size_t pos = 0;
  bool reverse_strand = false;
  int mismatches = 0;
  std::size_t read_length = 0;

  [[nodiscard]] bool aligned() const { return target_id >= 0; }
};

/// K-mer seed index over a set of target contigs.
class ContigIndex {
 public:
  /// Builds the index; copies of the contigs are kept for verification.
  ContigIndex(std::vector<seq::Sequence> contigs, const AlignerOptions& options);

  struct SeedHit {
    std::int32_t contig_id;
    std::uint32_t position;
  };

  /// All occurrences of `code` among the contigs (empty when the seed was
  /// suppressed as hyper-repetitive).
  [[nodiscard]] const std::vector<SeedHit>* lookup(seq::KmerCode code) const;

  [[nodiscard]] const std::vector<seq::Sequence>& contigs() const { return contigs_; }
  [[nodiscard]] const AlignerOptions& options() const { return options_; }

 private:
  std::vector<seq::Sequence> contigs_;
  AlignerOptions options_;
  std::unordered_map<seq::KmerCode, std::vector<SeedHit>> seeds_;
};

/// The aligner proper.
class SeedExtendAligner {
 public:
  explicit SeedExtendAligner(const ContigIndex& index) : index_(index) {}

  /// Best alignment of `read` (forward or reverse strand), or an unaligned
  /// record when nothing fits within the mismatch budget. Deterministic:
  /// ties break toward fewer mismatches, then lower contig id, then lower
  /// position, then forward strand.
  [[nodiscard]] SamRecord align_read(const seq::Sequence& read) const;

  /// Aligns every read (OpenMP-parallel); output order matches input order.
  [[nodiscard]] std::vector<SamRecord> align_all(const std::vector<seq::Sequence>& reads) const;

 private:
  /// Tries all seed positions of `bases` on one strand, updating `best`.
  void align_strand(const std::string& bases, bool reverse, SamRecord& best) const;

  const ContigIndex& index_;
};

/// Writes records as a SAM file with @HD/@SQ headers over the index's
/// contigs. Unaligned records get the 0x4 flag.
void write_sam(const std::string& path, const std::vector<SamRecord>& records,
               const std::vector<seq::Sequence>& contigs);

/// Concatenates the record sections of several SAM files under one header —
/// the paper's final merge of per-node Bowtie outputs. Headers of the
/// inputs are dropped; `contigs` provides the merged header.
void merge_sam_files(const std::vector<std::string>& inputs, const std::string& output,
                     const std::vector<seq::Sequence>& contigs);

}  // namespace trinity::align
