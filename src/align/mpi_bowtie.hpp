#pragma once
// Distributed Bowtie driver (paper Section III.A, Figure 10).
//
// The paper ran Bowtie on multiple nodes "by splitting the target sequences
// of Bowtie, i.e. the Fasta file of Inchworm contigs" with PyFasta; every
// node aligns the full read set against its slice of the contigs, writes a
// SAM file, and the per-node files are merged at the end. This driver does
// the same over simpi ranks, and reports the phase times Figure 10 plots:
// the (serial) split, the per-rank alignment, and the merge.

#include <string>
#include <vector>

#include "align/aligner.hpp"
#include "simpi/context.hpp"
#include "seq/sequence.hpp"

namespace trinity::align {

/// How the work is split across ranks.
enum class BowtieSplit {
  /// The paper's scheme: PyFasta-split the target contigs; every rank
  /// aligns the full read set against its slice; merge per-read best hits.
  kTargets,
  /// The alternative the paper contrasts itself with (Bozdag, Hatem &
  /// Catalyurek, IPDPSW 2010): split the READS across ranks and replicate
  /// the full index on every rank. No serial split step and no per-read
  /// merge, at the cost of a redundant index build per rank.
  kReads,
};

/// Timing breakdown of one distributed run, in virtual seconds.
struct DistributedBowtieTiming {
  double split_seconds = 0.0;        ///< serial fasplit cost (rank 0)
  double align_seconds_max = 0.0;    ///< slowest rank's alignment time
  double align_seconds_min = 0.0;    ///< fastest rank's alignment time
  double merge_seconds = 0.0;        ///< SAM merge cost (rank 0)
  [[nodiscard]] double total_seconds() const {
    return split_seconds + align_seconds_max + merge_seconds;
  }
};

/// Result of a distributed alignment.
struct DistributedBowtieResult {
  std::vector<SamRecord> records;  ///< merged records, only valid on rank 0
  DistributedBowtieTiming timing;  ///< identical on every rank
};

/// Runs the split-targets/align/merge scheme inside an open simpi world.
/// Must be called collectively by every rank. `contigs` and `reads` must be
/// identical on every rank (the paper's nodes all see the shared
/// filesystem). Alignment time is measured per rank on its CPU clock.
DistributedBowtieResult distributed_bowtie(simpi::Context& ctx,
                                           const std::vector<seq::Sequence>& contigs,
                                           const std::vector<seq::Sequence>& reads,
                                           const AlignerOptions& options,
                                           BowtieSplit split = BowtieSplit::kTargets);

}  // namespace trinity::align
