#include "align/aligner.hpp"

#include <omp.h>

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "seq/dna.hpp"

namespace trinity::align {

ContigIndex::ContigIndex(std::vector<seq::Sequence> contigs, const AlignerOptions& options)
    : contigs_(std::move(contigs)), options_(options) {
  const seq::KmerCodec codec(options_.seed_length);
  for (std::size_t c = 0; c < contigs_.size(); ++c) {
    for (const auto& occ : codec.extract(contigs_[c].bases)) {
      seeds_[occ.code].push_back(
          {static_cast<std::int32_t>(c), static_cast<std::uint32_t>(occ.position)});
    }
  }
  // Suppress hyper-repetitive seeds: they explode verification cost without
  // adding placements Bowtie would report uniquely anyway.
  for (auto& [code, hits] : seeds_) {
    if (hits.size() > options_.max_hits_per_seed) hits.clear();
  }
}

const std::vector<ContigIndex::SeedHit>* ContigIndex::lookup(seq::KmerCode code) const {
  const auto it = seeds_.find(code);
  if (it == seeds_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

namespace {

/// Counts mismatches of `read` placed at `pos` on `target`, bailing out
/// once `budget` is exceeded. Returns budget+1 on an out-of-bounds
/// placement or early bail.
int mismatches_at(const std::string& target, const std::string& read, std::size_t pos,
                  int budget) {
  if (pos + read.size() > target.size()) return budget + 1;
  int mm = 0;
  for (std::size_t i = 0; i < read.size(); ++i) {
    if (target[pos + i] != read[i]) {
      if (++mm > budget) return mm;
    }
  }
  return mm;
}

}  // namespace

void SeedExtendAligner::align_strand(const std::string& bases, bool reverse,
                                     SamRecord& best) const {
  const auto& opts = index_.options();
  const auto s = static_cast<std::size_t>(opts.seed_length);
  if (bases.size() < s) return;
  const seq::KmerCodec codec(opts.seed_length);

  // Seed from three offsets (start / middle / end): with a budget of v
  // mismatches, at least one of the three windows of a valid placement is
  // exact whenever v <= 2, mirroring Bowtie's seed heuristics.
  const std::size_t offsets[3] = {0, (bases.size() - s) / 2, bases.size() - s};
  std::size_t tried_offsets[3];
  std::size_t n_offsets = 0;
  for (const std::size_t off : offsets) {
    bool seen = false;
    for (std::size_t i = 0; i < n_offsets; ++i) seen = seen || tried_offsets[i] == off;
    if (!seen) tried_offsets[n_offsets++] = off;
  }

  for (std::size_t oi = 0; oi < n_offsets; ++oi) {
    const std::size_t off = tried_offsets[oi];
    const auto code = codec.encode(std::string_view(bases).substr(off, s));
    if (!code) continue;
    const auto* hits = index_.lookup(*code);
    if (!hits) continue;
    for (const auto& hit : *hits) {
      if (hit.position < off) continue;
      const std::size_t placement = hit.position - off;
      const auto& target = index_.contigs()[static_cast<std::size_t>(hit.contig_id)].bases;
      const int mm = mismatches_at(target, bases, placement, opts.max_mismatches);
      if (mm > opts.max_mismatches) continue;
      const bool better =
          !best.aligned() || mm < best.mismatches ||
          (mm == best.mismatches &&
           std::tie(hit.contig_id, placement, reverse) <
               std::tie(best.target_id, best.pos, best.reverse_strand));
      if (better) {
        best.target_id = hit.contig_id;
        best.target_name = index_.contigs()[static_cast<std::size_t>(hit.contig_id)].name;
        best.pos = placement;
        best.reverse_strand = reverse;
        best.mismatches = mm;
      }
    }
  }
}

SamRecord SeedExtendAligner::align_read(const seq::Sequence& read) const {
  SamRecord best;
  best.read_name = read.name;
  best.read_length = read.bases.size();
  align_strand(read.bases, /*reverse=*/false, best);
  const std::string rc = seq::reverse_complement(read.bases);
  align_strand(rc, /*reverse=*/true, best);
  return best;
}

std::vector<SamRecord> SeedExtendAligner::align_all(
    const std::vector<seq::Sequence>& reads) const {
  std::vector<SamRecord> out(reads.size());
  const int requested = index_.options().num_threads;
  const auto n = static_cast<std::int64_t>(reads.size());
#pragma omp parallel for schedule(dynamic, 256) \
    num_threads(requested > 0 ? requested : omp_get_max_threads())
  for (std::int64_t i = 0; i < n; ++i) {
    // kernel_repeats: see the options doc; extra iterations are discarded.
    for (int rep = 1; rep < index_.options().kernel_repeats; ++rep) {
      (void)align_read(reads[static_cast<std::size_t>(i)]);
    }
    out[static_cast<std::size_t>(i)] = align_read(reads[static_cast<std::size_t>(i)]);
  }
  return out;
}

namespace {
void write_sam_header(std::ofstream& out, const std::vector<seq::Sequence>& contigs) {
  out << "@HD\tVN:1.6\tSO:unsorted\n";
  for (const auto& c : contigs) {
    out << "@SQ\tSN:" << c.name << "\tLN:" << c.bases.size() << '\n';
  }
}

void write_sam_record(std::ofstream& out, const SamRecord& r) {
  if (r.aligned()) {
    const int flag = r.reverse_strand ? 16 : 0;
    out << r.read_name << '\t' << flag << '\t' << r.target_name << '\t' << (r.pos + 1)
        << "\t255\t" << r.read_length << "M\t*\t0\t0\t*\t*\tNM:i:" << r.mismatches << '\n';
  } else {
    out << r.read_name << "\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*\n";
  }
}
}  // namespace

void write_sam(const std::string& path, const std::vector<SamRecord>& records,
               const std::vector<seq::Sequence>& contigs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_sam: cannot open '" + path + "'");
  write_sam_header(out, contigs);
  for (const auto& r : records) write_sam_record(out, r);
  if (!out) throw std::runtime_error("write_sam: write failure on '" + path + "'");
}

void merge_sam_files(const std::vector<std::string>& inputs, const std::string& output,
                     const std::vector<seq::Sequence>& contigs) {
  std::ofstream out(output);
  if (!out) throw std::runtime_error("merge_sam_files: cannot open '" + output + "'");
  write_sam_header(out, contigs);
  for (const auto& path : inputs) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("merge_sam_files: cannot open '" + path + "'");
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '@') continue;  // drop per-part headers
      out << line << '\n';
    }
  }
  if (!out) throw std::runtime_error("merge_sam_files: write failure on '" + output + "'");
}

}  // namespace trinity::align
