#include "pipeline/config.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "align/mpi_bowtie.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "seq/fasta.hpp"

namespace trinity {

namespace {

/// Underscores and dashes are interchangeable in flag names and JSON keys;
/// the canonical spelling is dashed.
std::string normalize(std::string name) {
  for (auto& c : name) {
    if (c == '_') c = '-';
  }
  while (!name.empty() && name.front() == '-') name.erase(name.begin());
  return name;
}

std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool parse_bool_text(const std::string& text, const std::string& field) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") return true;
  if (text == "false" || text == "0" || text == "no" || text == "off") return false;
  throw ConfigError(field, "expected a boolean (true/false), got '" + text + "'");
}

std::int64_t parse_int_text(const std::string& text, const std::string& field) {
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ConfigError(field, "expected an integer, got '" + text + "'");
  }
}

double parse_double_text(const std::string& text, const std::string& field) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ConfigError(field, "expected a number, got '" + text + "'");
  }
}

}  // namespace

ConfigError::ConfigError(std::string field, std::string reason)
    : std::runtime_error("config error: --" + field + ": " + reason),
      field_(std::move(field)),
      reason_(std::move(reason)) {}

Config::Config(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Config& Config::usage(std::string positional_usage) {
  usage_ = std::move(positional_usage);
  return *this;
}

Config& Config::declare(const std::string& name, Kind kind, std::string dflt,
                        std::string help) {
  const std::string canon = normalize(name);
  if (find_flag(canon) != nullptr) {
    throw ConfigError(canon, "flag declared twice");
  }
  flags_.push_back({canon, kind, std::move(dflt), std::move(help)});
  return *this;
}

Config& Config::flag_string(const std::string& name, std::string dflt, std::string help) {
  return declare(name, Kind::kString, std::move(dflt), std::move(help));
}

Config& Config::flag_int(const std::string& name, std::int64_t dflt, std::string help) {
  return declare(name, Kind::kInt, std::to_string(dflt), std::move(help));
}

Config& Config::flag_double(const std::string& name, double dflt, std::string help) {
  return declare(name, Kind::kDouble, render_double(dflt), std::move(help));
}

Config& Config::flag_bool(const std::string& name, bool dflt, std::string help) {
  return declare(name, Kind::kBool, dflt ? "true" : "false", std::move(help));
}

Config& Config::alias(const std::string& deprecated, const std::string& canonical) {
  aliases_[normalize(deprecated)] = normalize(canonical);
  return *this;
}

Config& Config::with_fault_flags() {
  if (has_fault_) return *this;
  has_fault_ = true;
  flag_int("fault-rank", -1, "rank to kill mid-stage (-1 disables fault injection)");
  flag_string("fault-op", "",
              "operation whose Nth entry fires the fault (barrier, bcast, gatherv, "
              "allgatherv, alltoallv, reduce, send, recv); empty = first communication");
  flag_int("fault-at", 1, "1-based entry of --fault-op that fires the fault");
  flag_int("max-attempts", 3, "stage re-launches before giving up on a rank fault");
  return *this;
}

Config& Config::with_pipeline(const pipeline::PipelineOptions& defaults) {
  if (has_pipeline_) return *this;
  has_pipeline_ = true;
  base_ = defaults;

  flag_int("ranks", defaults.nranks,
           "simulated MPI ranks (1 = the original shared-memory pipeline)");
  alias("nprocs", "ranks");
  flag_int("threads-per-rank", defaults.model_threads_per_rank,
           "modeled threads per simulated node");
  alias("model-threads", "threads-per-rank");
  flag_int("omp-threads", defaults.omp_threads, "real OpenMP threads (0 = auto)");
  flag_int("k", defaults.k, "k-mer size used by every stage");
  flag_int("min-kmer-count", defaults.min_kmer_count, "Inchworm error-pruning threshold");
  flag_int("min-weld-support", defaults.min_weld_support, "GraphFromFasta weld support");
  flag_int("max-mem-reads", static_cast<std::int64_t>(defaults.max_mem_reads),
           "ReadsToTranscripts chunk size (reads held in memory)");
  flag_bool("bowtie-scaffolding", defaults.bowtie_scaffolding,
            "feed Bowtie pairs into clustering");
  flag_string("work-dir", defaults.work_dir, "stage file-exchange directory");
  flag_int("run-seed", static_cast<std::int64_t>(defaults.run_seed),
           "models Trinity's run-to-run variation");
  flag_int("trace-sample-interval-ms", defaults.trace_sample_interval_ms,
           "RSS sampler period (0 disables)");

  flag_string("gff-distribution",
              defaults.gff_distribution == chrysalis::Distribution::kBlock    ? "block"
              : defaults.gff_distribution == chrysalis::Distribution::kDynamic ? "dynamic"
                                                                               : "crr",
              "GraphFromFasta contig distribution (crr, block, dynamic)");
  flag_string("gff-sharding", chrysalis::to_string(defaults.gff_sharding),
              "GraphFromFasta weld movement (pooled, overlap, owner); components "
              "are identical across all three");
  // The pre-ShardingStrategy boolean spelling; its true/false values map to
  // overlap/pooled in pipeline_options().
  alias("overlap-pooling", "gff-sharding");
  flag_bool("gff-hybrid-setup", defaults.gff_hybrid_setup,
            "cooperative GraphFromFasta setup (the paper's future work)");
  flag_string("r2t-strategy",
              defaults.r2t_strategy == chrysalis::R2TStrategy::kMasterSlave ? "master-slave"
                                                                            : "redundant",
              "ReadsToTranscripts chunk distribution (redundant, master-slave)");
  flag_string("r2t-output",
              defaults.r2t_output_mode == chrysalis::R2TOutputMode::kCollective ? "collective"
                                                                                : "concat",
              "hybrid ReadsToTranscripts output merge (concat, collective)");
  flag_string("r2t-mode",
              defaults.r2t_mode == chrysalis::R2TMode::kIndex ? "index" : "vote",
              "ReadsToTranscripts engine (vote, index); assignments are identical");
  flag_string("r2t-index",
              defaults.r2t_index == chrysalis::IndexLifecycle::kBuild  ? "build"
              : defaults.r2t_index == chrysalis::IndexLifecycle::kLoad ? "load"
                                                                       : "auto",
              "transcript-index lifecycle under --r2t-mode index (build, load, auto)");
  flag_string("bowtie-split",
              defaults.bowtie_split == align::BowtieSplit::kReads ? "reads" : "targets",
              "distributed Bowtie work split (targets, reads)");
  flag_int("min-node-support", defaults.butterfly_min_node_support,
           "Butterfly read-reconciliation threshold");
  flag_bool("require-paired-support", defaults.butterfly_require_paired_support,
            "Butterfly paired-end reconciliation");
  flag_bool("overlap", defaults.overlap,
            "overlap Chrysalis communication with compute (--no-overlap for fully "
            "blocking collectives; outputs are identical either way)");
  flag_int("bowtie-repeats", defaults.bowtie_kernel_repeats,
           "Bowtie kernel repeats (cost-model calibration)");
  flag_int("gff-repeats", defaults.gff_kernel_repeats,
           "GraphFromFasta kernel repeats (cost-model calibration)");
  flag_int("r2t-repeats", defaults.r2t_kernel_repeats,
           "ReadsToTranscripts kernel repeats (cost-model calibration)");

  flag_bool("checkpoint", defaults.checkpoint,
            "record completed stages in <work-dir>/run_manifest.jsonl "
            "(--no-checkpoint disables)");
  flag_bool("resume", defaults.resume, "skip stages whose checkpoint still validates");
  with_fault_flags();
  flag_string("fault-stage", defaults.fault_stage,
              "stage whose simpi world receives the fault");
  flag_string("hang-stage", defaults.hang_stage,
              "stage that wedges for --hang-seconds before computing "
              "(watchdog testing; empty disables)");
  flag_double("hang-seconds", defaults.hang_seconds,
              "injected in-stage hang duration, cancellable via the "
              "preempt/deadline tokens");
  flag_string("parse-policy",
              defaults.parse_policy == seq::ParsePolicy::kTolerant ? "tolerant"
              : defaults.parse_policy == seq::ParsePolicy::kRepair ? "repair"
                                                                   : "strict",
              "malformed-input handling (strict, tolerant, repair)");
  flag_bool("report", defaults.emit_report, "write <work-dir>/run_report.json");
  flag_string("report-path", defaults.report_path,
              "run-report destination (empty = <work-dir>/run_report.json)");
  flag_bool("trace", !defaults.trace_path.empty(),
            "write a Chrome trace of the run to --trace-path");
  flag_string("trace-path", defaults.trace_path,
              "trace destination, joined to --work-dir when relative "
              "(empty with --trace = trace.json)");
  alias("trace-file", "trace-path");
  return *this;
}

const Config::Flag* Config::find_flag(const std::string& canonical_name) const {
  for (const auto& flag : flags_) {
    if (flag.name == canonical_name) return &flag;
  }
  return nullptr;
}

std::string Config::resolve(const std::string& raw, bool* negated) {
  if (negated != nullptr) *negated = false;
  std::string name = normalize(raw);
  const auto aliased = aliases_.find(name);
  if (aliased != aliases_.end()) {
    deprecations_.push_back("--" + name + " is deprecated; use --" + aliased->second);
    name = aliased->second;
  }
  if (find_flag(name) != nullptr) return name;
  // --no-X negation of a declared boolean flag X.
  if (negated != nullptr && name.rfind("no-", 0) == 0) {
    const std::string positive = name.substr(3);
    const Flag* flag = find_flag(positive);
    if (flag != nullptr && flag->kind == Kind::kBool) {
      *negated = true;
      return positive;
    }
  }
  throw ConfigError(name, "unknown option (see --help)");
}

void Config::set_value(const std::string& canonical_name, const std::string& value,
                       const std::string& origin) {
  const Flag* flag = find_flag(canonical_name);
  if (flag == nullptr) throw ConfigError(canonical_name, "unknown key in " + origin);
  // Validate eagerly so the error points at the parse, not a later getter.
  switch (flag->kind) {
    case Kind::kInt:
      (void)parse_int_text(value, canonical_name);
      break;
    case Kind::kDouble:
      (void)parse_double_text(value, canonical_name);
      break;
    case Kind::kBool:
      (void)parse_bool_text(value, canonical_name);
      break;
    case Kind::kString:
      break;
  }
  values_[canonical_name] = value;
}

Config& Config::parse_cli(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);

  // Pre-pass: --config FILE.json loads first so explicit flags override it.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const auto& tok = tokens[i];
    if (tok == "--config" || tok == "-config") {
      if (i + 1 >= tokens.size()) throw ConfigError("config", "missing value");
      parse_json_file(tokens[i + 1]);
    } else if (tok.rfind("--config=", 0) == 0) {
      parse_json_file(tok.substr(9));
    }
  }

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok == "--help" || tok == "-h") {
      help_requested_ = true;
      return *this;
    }
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(tok);
      continue;
    }
    std::string body = tok.substr(2);
    if (body.empty()) throw ConfigError("", "malformed option '--'");
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = body.find('='); eq != std::string::npos) {
      inline_value = body.substr(eq + 1);
      has_inline = true;
      body.resize(eq);
    }
    if (normalize(body) == "config") {
      if (!has_inline) ++i;  // value consumed by the pre-pass
      continue;
    }
    bool negated = false;
    const std::string name = resolve(body, &negated);
    const Flag* flag = find_flag(name);
    if (flag->kind == Kind::kBool) {
      if (negated) {
        if (has_inline) throw ConfigError(name, "--no-" + name + " takes no value");
        set_value(name, "false", "<cli>");
      } else {
        set_value(name, has_inline ? inline_value : "true", "<cli>");
      }
      continue;
    }
    if (negated) throw ConfigError("no-" + name, "unknown option (see --help)");
    if (!has_inline) {
      if (i + 1 >= tokens.size()) throw ConfigError(name, "missing value");
      inline_value = tokens[++i];
    }
    set_value(name, inline_value, "<cli>");
  }
  return *this;
}

Config& Config::parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("config", "cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_json_text(text.str(), path);
}

Config& Config::parse_json_text(std::string_view text, const std::string& origin) {
  util::Json doc;
  try {
    doc = util::Json::parse(text);
  } catch (const std::exception& e) {
    throw ConfigError("config", "malformed JSON in " + origin + ": " + e.what());
  }
  if (!doc.is_object()) throw ConfigError("config", origin + " is not a JSON object");
  for (const auto& [key, value] : doc.members()) {
    const std::string name = resolve(key, nullptr);
    const Flag* flag = find_flag(name);
    std::string rendered;
    switch (value.kind()) {
      case util::Json::Kind::kString:
        rendered = value.as_string();
        break;
      case util::Json::Kind::kBool:
        rendered = value.as_bool() ? "true" : "false";
        break;
      case util::Json::Kind::kNumber:
        if (flag != nullptr && flag->kind == Kind::kInt) {
          try {
            rendered = std::to_string(value.as_int());
          } catch (const std::exception&) {
            throw ConfigError(name, "expected an integer in " + origin);
          }
        } else {
          rendered = render_double(value.as_double());
        }
        break;
      default:
        throw ConfigError(name, "expected a scalar value in " + origin);
    }
    set_value(name, rendered, origin);
  }
  return *this;
}

Config Config::from_cli(int argc, const char* const* argv) {
  Config cfg(argc > 0 ? argv[0] : "trinity", "Trinity pipeline configuration");
  cfg.with_pipeline();
  cfg.parse_cli(argc, argv);
  return cfg;
}

Config Config::from_json(const std::string& path) {
  Config cfg("trinity", "Trinity pipeline configuration");
  cfg.with_pipeline();
  cfg.parse_json_file(path);
  return cfg;
}

std::string Config::help_text() const {
  std::ostringstream out;
  out << "usage: " << program_ << " [options]";
  if (!usage_.empty()) out << ' ' << usage_;
  out << '\n';
  if (!description_.empty()) out << description_ << '\n';
  out << "\noptions:\n";
  for (const auto& flag : flags_) {
    std::string left = "  --" + flag.name;
    switch (flag.kind) {
      case Kind::kInt:
        left += " N";
        break;
      case Kind::kDouble:
        left += " X";
        break;
      case Kind::kString:
        left += " S";
        break;
      case Kind::kBool:
        break;
    }
    out << left;
    if (left.size() < 30) out << std::string(30 - left.size(), ' ');
    out << ' ' << flag.help;
    if (!flag.dflt.empty() && flag.dflt != "false") out << " (default: " << flag.dflt << ')';
    out << '\n';
  }
  out << "  --config FILE.json             preload any of the above from a JSON object\n"
         "                                 (explicit flags override; see docs/CONFIG.md)\n"
         "  --no-X                         clear boolean flag X (e.g. --no-checkpoint)\n"
         "  --help, -h                     show this text\n";
  if (!aliases_.empty()) {
    out << "\ndeprecated spellings (still accepted):\n";
    for (const auto& [old_name, canon] : aliases_) {
      out << "  --" << old_name << " -> use --" << canon << '\n';
    }
  }
  return out.str();
}

bool Config::is_set(const std::string& name) const {
  return values_.count(normalize(name)) != 0;
}

const Config::Flag& Config::require(const std::string& name, Kind kind) const {
  const Flag* flag = find_flag(normalize(name));
  if (flag == nullptr) throw ConfigError(normalize(name), "flag was never declared");
  if (flag->kind != kind) throw ConfigError(flag->name, "accessed with the wrong type");
  return *flag;
}

std::string Config::get_string(const std::string& name) const {
  const Flag& flag = require(name, Kind::kString);
  const auto it = values_.find(flag.name);
  return it != values_.end() ? it->second : flag.dflt;
}

std::int64_t Config::get_int(const std::string& name) const {
  const Flag& flag = require(name, Kind::kInt);
  const auto it = values_.find(flag.name);
  return parse_int_text(it != values_.end() ? it->second : flag.dflt, flag.name);
}

double Config::get_double(const std::string& name) const {
  const Flag& flag = require(name, Kind::kDouble);
  const auto it = values_.find(flag.name);
  return parse_double_text(it != values_.end() ? it->second : flag.dflt, flag.name);
}

bool Config::get_bool(const std::string& name) const {
  const Flag& flag = require(name, Kind::kBool);
  const auto it = values_.find(flag.name);
  return parse_bool_text(it != values_.end() ? it->second : flag.dflt, flag.name);
}

simpi::FaultPlan Config::fault_plan() const {
  if (!has_fault_) throw ConfigError("fault-rank", "with_fault_flags() was never called");
  simpi::FaultPlan fault;
  fault.rank = static_cast<int>(get_int("fault-rank"));
  const std::string op = get_string("fault-op");
  if (!op.empty()) {
    try {
      fault.op = simpi::fault_op_from_string(op);
    } catch (const std::exception&) {
      throw ConfigError("fault-op",
                        "must be one of barrier, bcast, gatherv, allgatherv, alltoallv, "
                        "reduce, send, recv (got '" + op + "')");
    }
    const std::int64_t at = get_int("fault-at");
    if (at < 1) throw ConfigError("fault-at", "must be >= 1");
    fault.at_entry = static_cast<int>(at);
  } else if (fault.rank >= 0) {
    fault.after_virtual_seconds = 0.0;  // first communication
  }
  return fault;
}

pipeline::PipelineOptions Config::pipeline_options() const {
  if (!has_pipeline_) throw ConfigError("ranks", "with_pipeline() was never called");
  pipeline::PipelineOptions options = base_;

  const auto int_at_least = [&](const char* name, std::int64_t min) {
    const std::int64_t value = get_int(name);
    if (value < min) {
      throw ConfigError(name, "must be >= " + std::to_string(min) + " (got " +
                                  std::to_string(value) + ")");
    }
    return value;
  };

  options.nranks = static_cast<int>(int_at_least("ranks", 1));
  options.model_threads_per_rank = static_cast<int>(int_at_least("threads-per-rank", 1));
  options.omp_threads = static_cast<int>(int_at_least("omp-threads", 0));
  const std::int64_t k = get_int("k");
  if (k < 2 || k > 32) {
    throw ConfigError("k", "must be in [2, 32] (got " + std::to_string(k) + ")");
  }
  options.k = static_cast<int>(k);
  options.min_kmer_count = static_cast<std::uint32_t>(int_at_least("min-kmer-count", 1));
  options.min_weld_support = static_cast<std::uint32_t>(int_at_least("min-weld-support", 1));
  options.max_mem_reads = static_cast<std::size_t>(int_at_least("max-mem-reads", 1));
  options.bowtie_scaffolding = get_bool("bowtie-scaffolding");
  options.work_dir = get_string("work-dir");
  options.run_seed = static_cast<std::uint64_t>(int_at_least("run-seed", 0));
  options.trace_sample_interval_ms =
      static_cast<int>(int_at_least("trace-sample-interval-ms", 0));

  const std::string dist = get_string("gff-distribution");
  if (dist == "crr") {
    options.gff_distribution = chrysalis::Distribution::kChunkedRoundRobin;
  } else if (dist == "block") {
    options.gff_distribution = chrysalis::Distribution::kBlock;
  } else if (dist == "dynamic") {
    options.gff_distribution = chrysalis::Distribution::kDynamic;
  } else {
    throw ConfigError("gff-distribution",
                      "must be one of crr, block, dynamic (got '" + dist + "')");
  }
  options.gff_hybrid_setup = get_bool("gff-hybrid-setup");

  // Boolean spellings are accepted for the deprecated --overlap-pooling
  // alias: its old true/false values mean overlap/pooled.
  const std::string sharding = get_string("gff-sharding");
  if (!chrysalis::sharding_from_string(sharding, &options.gff_sharding)) {
    throw ConfigError("gff-sharding",
                      "must be one of pooled, overlap, owner (got '" + sharding + "')");
  }

  const std::string strategy = get_string("r2t-strategy");
  if (strategy == "redundant") {
    options.r2t_strategy = chrysalis::R2TStrategy::kRedundantStreaming;
  } else if (strategy == "master-slave") {
    options.r2t_strategy = chrysalis::R2TStrategy::kMasterSlave;
  } else {
    throw ConfigError("r2t-strategy",
                      "must be one of redundant, master-slave (got '" + strategy + "')");
  }
  const std::string output = get_string("r2t-output");
  if (output == "concat") {
    options.r2t_output_mode = chrysalis::R2TOutputMode::kPerRankConcat;
  } else if (output == "collective") {
    options.r2t_output_mode = chrysalis::R2TOutputMode::kCollective;
  } else {
    throw ConfigError("r2t-output",
                      "must be one of concat, collective (got '" + output + "')");
  }
  const std::string mode = get_string("r2t-mode");
  if (mode == "vote") {
    options.r2t_mode = chrysalis::R2TMode::kVote;
  } else if (mode == "index") {
    options.r2t_mode = chrysalis::R2TMode::kIndex;
  } else {
    throw ConfigError("r2t-mode", "must be one of vote, index (got '" + mode + "')");
  }
  const std::string lifecycle = get_string("r2t-index");
  if (lifecycle == "build") {
    options.r2t_index = chrysalis::IndexLifecycle::kBuild;
  } else if (lifecycle == "load") {
    options.r2t_index = chrysalis::IndexLifecycle::kLoad;
  } else if (lifecycle == "auto") {
    options.r2t_index = chrysalis::IndexLifecycle::kAuto;
  } else {
    throw ConfigError("r2t-index",
                      "must be one of build, load, auto (got '" + lifecycle + "')");
  }
  const std::string split = get_string("bowtie-split");
  if (split == "targets") {
    options.bowtie_split = align::BowtieSplit::kTargets;
  } else if (split == "reads") {
    options.bowtie_split = align::BowtieSplit::kReads;
  } else {
    throw ConfigError("bowtie-split",
                      "must be one of targets, reads (got '" + split + "')");
  }
  options.butterfly_min_node_support =
      static_cast<std::uint32_t>(int_at_least("min-node-support", 0));
  options.butterfly_require_paired_support = get_bool("require-paired-support");
  options.overlap = get_bool("overlap");
  options.bowtie_kernel_repeats = static_cast<int>(int_at_least("bowtie-repeats", 1));
  options.gff_kernel_repeats = static_cast<int>(int_at_least("gff-repeats", 1));
  options.r2t_kernel_repeats = static_cast<int>(int_at_least("r2t-repeats", 1));

  options.checkpoint = get_bool("checkpoint");
  options.resume = get_bool("resume");
  options.retry.max_attempts = static_cast<int>(int_at_least("max-attempts", 1));
  options.fault = fault_plan();
  options.fault_stage = get_string("fault-stage");
  options.hang_stage = get_string("hang-stage");
  options.hang_seconds = get_double("hang-seconds");
  if (options.hang_seconds < 0.0) {
    throw ConfigError("hang-seconds", "must be >= 0");
  }

  const std::string policy = get_string("parse-policy");
  if (policy == "strict") {
    options.parse_policy = seq::ParsePolicy::kStrict;
  } else if (policy == "tolerant") {
    options.parse_policy = seq::ParsePolicy::kTolerant;
  } else if (policy == "repair") {
    options.parse_policy = seq::ParsePolicy::kRepair;
  } else {
    throw ConfigError("parse-policy",
                      "must be one of strict, tolerant, repair (got '" + policy + "')");
  }
  options.emit_report = get_bool("report");
  options.report_path = get_string("report-path");
  const std::string trace_path = get_string("trace-path");
  if (get_bool("trace") || !trace_path.empty()) {
    options.trace_path = trace_path.empty() ? "trace.json" : trace_path;
  } else {
    options.trace_path.clear();
  }
  return options;
}

util::Json Config::to_json() const {
  util::Json doc = util::Json::object();
  for (const auto& flag : flags_) {
    const auto it = values_.find(flag.name);
    const std::string& raw = it != values_.end() ? it->second : flag.dflt;
    switch (flag.kind) {
      case Kind::kString:
        doc.set(flag.name, raw);
        break;
      case Kind::kInt:
        doc.set(flag.name, parse_int_text(raw, flag.name));
        break;
      case Kind::kDouble:
        doc.set(flag.name, parse_double_text(raw, flag.name));
        break;
      case Kind::kBool:
        doc.set(flag.name, parse_bool_text(raw, flag.name));
        break;
    }
  }
  return doc;
}

}  // namespace trinity
