#pragma once
// trinity::Config — the one flag/JSON parsing path for every binary.
//
// Before this existed each example and bench hand-rolled a util::CliArgs
// loop, so flag spellings drifted (--nprocs vs --ranks, --trace vs
// trace_path) and a typo silently fell through to a default. Config closes
// both holes: a binary *declares* its flags (name, type, default, help),
// parses the command line and/or a JSON file through one code path, and
// any unknown or malformed field raises a typed ConfigError naming the
// field — mirroring how io::ParseError names the exact input location.
//
// PipelineOptions stays the validated product: binaries that drive the
// whole pipeline call with_pipeline() to register the standard flag set
// and pipeline_options() to get a validated PipelineOptions, so existing
// call sites keep compiling against the plain struct.
//
// Usage (see docs/CONFIG.md for the JSON schema):
//
//   auto cfg = trinity::Config("quickstart", "run the full pipeline")
//                  .with_pipeline(defaults)
//                  .flag_int("genes", 40, "genes to simulate");
//   cfg.parse_cli(argc, argv);                 // throws ConfigError
//   if (cfg.help_requested()) { std::cout << cfg.help_text(); return 0; }
//   pipeline::PipelineOptions options = cfg.pipeline_options();
//
// Every parse also accepts `--config FILE.json` (values preloaded, CLI
// flags override), underscore spellings of any flag (`--work_dir` ==
// `--work-dir`), `--no-X` to clear a boolean flag X, and deprecated
// aliases (`--nprocs` for `--ranks`) which keep working but are flagged
// in --help and deprecation_notes().

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/trinity_pipeline.hpp"
#include "simpi/fault.hpp"
#include "util/json.hpp"

namespace trinity {

/// A malformed or unknown configuration field. Carries which field and
/// why, so "assemble_fasta --gff-distribution dyn" fails with
/// `config error: --gff-distribution: must be one of crr, block, dynamic`
/// instead of silently running the default strategy.
class ConfigError : public std::runtime_error {
 public:
  ConfigError(std::string field, std::string reason);

  /// Canonical (dash-spelled) name of the offending flag or JSON key.
  [[nodiscard]] const std::string& field() const { return field_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::string field_;
  std::string reason_;
};

/// Declarative flag schema + parsed values. Copyable and movable.
class Config {
 public:
  explicit Config(std::string program = "trinity", std::string description = "");

  // --- spec building (fluent; call before parsing) -------------------------

  /// Positional-argument usage text for --help, e.g. "<reads.fa>".
  Config& usage(std::string positional_usage);

  Config& flag_string(const std::string& name, std::string dflt, std::string help);
  Config& flag_int(const std::string& name, std::int64_t dflt, std::string help);
  Config& flag_double(const std::string& name, double dflt, std::string help);
  /// Boolean: bare `--name` sets true, `--no-name` sets false.
  Config& flag_bool(const std::string& name, bool dflt, std::string help);

  /// Registers `deprecated` as an accepted spelling of `canonical`.
  /// Parsing through it still works; --help lists it as deprecated and
  /// deprecation_notes() records each use.
  Config& alias(const std::string& deprecated, const std::string& canonical);

  /// Registers the rank-fault flag group (--fault-rank, --fault-op,
  /// --fault-at, --max-attempts) consumed by fault_plan().
  Config& with_fault_flags();

  /// Registers the standard pipeline flag set with `defaults` as the
  /// per-binary default values (includes the fault group plus
  /// --fault-stage). Enables pipeline_options().
  Config& with_pipeline(const pipeline::PipelineOptions& defaults = {});

  // --- parsing -------------------------------------------------------------

  /// Parses argv (excluding argv[0]). `--config FILE.json` anywhere on the
  /// line preloads values from that file; explicit CLI flags override it.
  /// Throws ConfigError on an unknown flag or malformed value.
  Config& parse_cli(int argc, const char* const* argv);

  /// Loads values from a JSON object file; keys are flag names (dash or
  /// underscore spelling). Throws ConfigError on unknown keys or
  /// non-scalar/mistyped values.
  Config& parse_json_file(const std::string& path);

  /// Same, from in-memory text; `origin` labels errors (a path or "<cli>").
  Config& parse_json_text(std::string_view text, const std::string& origin);

  /// One-call forms with the full pipeline flag set — the common case for
  /// a pipeline-driving binary with no extra flags.
  [[nodiscard]] static Config from_cli(int argc, const char* const* argv);
  [[nodiscard]] static Config from_json(const std::string& path);

  // --- results -------------------------------------------------------------

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string help_text() const;

  /// True when the flag was explicitly set (CLI or JSON), not defaulted.
  [[nodiscard]] bool is_set(const std::string& name) const;

  // Typed accessors return the parsed value or the declared default.
  // Querying an undeclared name throws ConfigError (programmer error).
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Non-option arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// One note per deprecated spelling actually used this parse.
  [[nodiscard]] const std::vector<std::string>& deprecation_notes() const {
    return deprecations_;
  }

  /// Validated PipelineOptions (requires with_pipeline()). Throws
  /// ConfigError naming the out-of-range or malformed field.
  [[nodiscard]] pipeline::PipelineOptions pipeline_options() const;

  /// Validated FaultPlan (requires with_fault_flags() or with_pipeline()).
  [[nodiscard]] simpi::FaultPlan fault_plan() const;

  /// Current values (set or default) of every declared flag, as a JSON
  /// object with canonical names — from_json(to_json()) round-trips.
  [[nodiscard]] util::Json to_json() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };

  struct Flag {
    std::string name;  ///< canonical dash spelling
    Kind kind;
    std::string dflt;  ///< rendered default
    std::string help;
  };

  Config& declare(const std::string& name, Kind kind, std::string dflt, std::string help);
  [[nodiscard]] const Flag* find_flag(const std::string& canonical_name) const;
  /// Normalizes one raw spelling (underscores -> dashes, alias map,
  /// --no- negation for bools). Throws ConfigError for unknown names.
  [[nodiscard]] std::string resolve(const std::string& raw, bool* negated);
  /// Type-checks and stores one value. Throws ConfigError on mismatch.
  void set_value(const std::string& canonical_name, const std::string& value,
                 const std::string& origin);
  [[nodiscard]] const Flag& require(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::string usage_;
  std::vector<Flag> flags_;  ///< declaration order (drives --help)
  std::map<std::string, std::string> aliases_;
  std::map<std::string, std::string> values_;  ///< canonical name -> raw value
  std::vector<std::string> positional_;
  std::vector<std::string> deprecations_;
  bool help_requested_ = false;
  bool has_pipeline_ = false;
  bool has_fault_ = false;
  pipeline::PipelineOptions base_;  ///< defaults captured by with_pipeline()
};

}  // namespace trinity
