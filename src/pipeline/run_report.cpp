#include "pipeline/run_report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "io/io_file.hpp"
#include "util/stats.hpp"

namespace trinity::pipeline {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

util::Json int_array(const std::vector<std::uint64_t>& values) {
  util::Json arr = util::Json::array();
  for (const auto v : values) arr.push_back(util::Json(static_cast<std::int64_t>(v)));
  return arr;
}

util::Json double_array(const std::vector<double>& values) {
  util::Json arr = util::Json::array();
  for (const auto v : values) arr.push_back(util::Json(v));
  return arr;
}

util::Json string_array(const std::vector<std::string>& values) {
  util::Json arr = util::Json::array();
  for (const auto& v : values) arr.push_back(util::Json(v));
  return arr;
}

util::Json phase_json(const util::PhaseRecord& r) {
  util::Json p = util::Json::object();
  p.set("name", r.name);
  p.set("start_s", r.start_seconds);
  p.set("wall_s", r.wall_seconds);
  p.set("cpu_s", r.cpu_seconds);
  p.set("rss_before_b", static_cast<std::int64_t>(r.rss_before));
  p.set("rss_after_b", static_cast<std::int64_t>(r.rss_after));
  p.set("rss_peak_b", static_cast<std::int64_t>(r.rss_peak));
  util::Json counters = util::Json::object();
  for (const auto& c : r.counters) counters.set(c.name, util::Json(c.value));
  p.set("counters", std::move(counters));
  return p;
}

util::Json rank_json(const simpi::RankResult& r) {
  util::Json out = util::Json::object();
  out.set("rank", r.rank);
  out.set("cpu_s", r.cpu_seconds);
  out.set("comm_s", r.comm_seconds);
  out.set("virtual_s", r.virtual_seconds());
  // Ops with zero calls are omitted: most stages use two or three of the
  // eight operations and all-zero rows are noise.
  util::Json ops = util::Json::object();
  for (std::size_t i = 0; i < simpi::kNumCommOps; ++i) {
    const auto& s = r.comm.ops[i];
    if (s.calls == 0) continue;
    util::Json op = util::Json::object();
    op.set("calls", static_cast<std::int64_t>(s.calls));
    op.set("bytes_sent", static_cast<std::int64_t>(s.bytes_sent));
    op.set("bytes_received", static_cast<std::int64_t>(s.bytes_received));
    op.set("wait_s", s.wait_seconds);
    ops.set(simpi::to_string(static_cast<simpi::CommOp>(i)), std::move(op));
  }
  out.set("ops", std::move(ops));
  return out;
}

util::Json comm_json(const StageCommMetrics& m) {
  util::Json out = util::Json::object();
  out.set("stage", m.stage);
  out.set("nranks", static_cast<std::int64_t>(m.ranks.size()));
  double max_virtual = 0.0, sum_virtual = 0.0;
  for (const auto& r : m.ranks) {
    const double v = r.virtual_seconds();
    max_virtual = v > max_virtual ? v : max_virtual;
    sum_virtual += v;
  }
  out.set("max_virtual_s", max_virtual);
  out.set("mean_virtual_s",
          m.ranks.empty() ? 0.0 : sum_virtual / static_cast<double>(m.ranks.size()));
  out.set("skew_ratio", m.skew_ratio());
  util::Json ranks = util::Json::array();
  for (const auto& r : m.ranks) ranks.push_back(rank_json(r));
  out.set("ranks", std::move(ranks));
  return out;
}

util::Json gff_json(const PipelineOptions& options, const chrysalis::GffTiming& t) {
  util::Json out = util::Json::object();
  out.set("loop1_s", double_array(t.loop1.seconds));
  out.set("loop2_s", double_array(t.loop2.seconds));
  out.set("setup_s", t.setup_seconds);
  out.set("finalize_s", t.finalize_seconds);
  out.set("comm_s", t.comm_seconds);
  out.set("weld_bytes_contributed", int_array(t.weld_bytes_contributed));
  out.set("weld_bytes_pooled", static_cast<std::int64_t>(t.weld_bytes_pooled));
  out.set("match_bytes_contributed", int_array(t.match_bytes_contributed));
  out.set("match_bytes_pooled", static_cast<std::int64_t>(t.match_bytes_pooled));
  out.set("overlap_compute_s", t.overlap_compute_seconds);
  out.set("pool_wait_s", t.pool_wait_seconds);
  // Additive fields (schema stays 4, readers ignore unknown keys):
  // gff_sharding always; owner-routing counters only under the owner
  // strategy, so pooled-mode documents are unchanged.
  out.set("gff_sharding", to_string(options.gff_sharding));
  if (options.gff_sharding == chrysalis::ShardingStrategy::kOwner) {
    out.set("weld_bytes_routed", static_cast<std::int64_t>(t.weld_bytes_routed));
    out.set("dsu_rounds", t.dsu_rounds);
    out.set("dsu_edge_bytes_routed", static_cast<std::int64_t>(t.dsu_edge_bytes_routed));
  }
  return out;
}

// Schema v2: the robustness section. All five quarantine categories are
// always present (zero or not) so consumers get exact per-category counts
// without existence checks.
util::Json parse_json(seq::ParsePolicy policy, const io::ParseDiagnostics& d) {
  util::Json out = util::Json::object();
  out.set("policy", to_string(policy));
  out.set("records_ok", static_cast<std::int64_t>(d.records_ok));
  out.set("records_quarantined", static_cast<std::int64_t>(d.records_quarantined()));
  out.set("records_repaired", static_cast<std::int64_t>(d.records_repaired));
  out.set("blank_lines", static_cast<std::int64_t>(d.blank_lines));
  out.set("crlf_lines", static_cast<std::int64_t>(d.crlf_lines));
  util::Json by_category = util::Json::object();
  for (std::size_t i = 0; i < io::kNumParseCategories; ++i) {
    by_category.set(io::to_string(static_cast<io::ParseCategory>(i)),
                    static_cast<std::int64_t>(d.quarantined[i]));
  }
  out.set("quarantined", std::move(by_category));
  return out;
}

util::Json r2t_json(const PipelineOptions& options, const chrysalis::R2TTiming& t) {
  util::Json out = util::Json::object();
  out.set("main_loop_s", double_array(t.main_loop.seconds));
  out.set("setup_s", t.setup_seconds);
  out.set("concat_s", t.concat_seconds);
  out.set("comm_s", t.comm_seconds);
  out.set("rank_chunks", int_array(t.rank_chunks));
  out.set("rank_reads", int_array(t.rank_reads));
  out.set("assignment_bytes_contributed", int_array(t.assignment_bytes_contributed));
  out.set("assignment_bytes_pooled", static_cast<std::int64_t>(t.assignment_bytes_pooled));
  out.set("prefetch_hidden_s", t.prefetch_hidden_seconds);
  out.set("prefetch_wait_s", t.prefetch_wait_seconds);
  // Additive fields (schema stays 3, readers ignore unknown keys):
  // r2t_mode always; index accounting only in index mode, so vote-mode
  // documents are unchanged. index_source distinguishes cold builds
  // ("built") from warm loads ("mmap") and serve cache hits
  // ("shared-cache") in the --aggregate roll-up.
  out.set("r2t_mode",
          options.r2t_mode == chrysalis::R2TMode::kIndex ? "index" : "vote");
  if (options.r2t_mode == chrysalis::R2TMode::kIndex) {
    out.set("index_build_s", t.index_build_seconds);
    out.set("index_load_s", t.index_load_seconds);
    out.set("index_source", t.index_source);
  }
  return out;
}

}  // namespace

util::Json build_run_report(const PipelineOptions& options, const PipelineResult& result) {
  util::Json report = util::Json::object();
  report.set("schema_version", kReportSchemaVersion);
  report.set("generator", "trinity_pipeline");
  report.set("nranks", options.nranks);
  report.set("model_threads_per_rank", options.model_threads_per_rank);
  report.set("options_fingerprint", hex64(result.options_fingerprint));
  // Additive schema-3 fields: job attribution, present only when the run
  // belongs to a job server dispatch (docs/SERVING.md). Standalone runs
  // omit all three, so v2 consumers see an unchanged document.
  if (!options.job_id.empty() || !options.tenant.empty()) {
    report.set("job_id", options.job_id);
    report.set("tenant", options.tenant);
    report.set("preemptions", options.preemptions);
    // Schema v4: dispatch count, terminal outcome, and whether this run
    // was re-admitted from a crashed server's journal. A report written
    // here always describes a run that finished — non-completed outcomes
    // (quarantined, deadline_exceeded, hung, failed) are stamped by the
    // job server's minimal terminal reports instead.
    report.set("attempts", options.attempts);
    report.set("outcome", "completed");
    report.set("recovered", options.recovered);
  }
  report.set("stages_executed", string_array(result.stages_executed));
  report.set("stages_resumed", string_array(result.stages_resumed));
  report.set("stage_retries", result.stage_retries);
  report.set("io_retries", result.io_retries);
  report.set("parse", parse_json(options.parse_policy, result.parse));
  // Additive schema-2 field: present only when the run emitted a Chrome
  // trace. Recorded as given in options (work-dir relative by default) so
  // a report plus its trace stay portable as a pair.
  if (!result.trace_file.empty()) {
    report.set("trace_file",
               options.trace_path.empty() ? result.trace_file : options.trace_path);
  }

  util::Json phases = util::Json::array();
  for (const auto& p : result.trace) phases.push_back(phase_json(p));
  report.set("phases", std::move(phases));

  util::Json comm = util::Json::array();
  for (const auto& m : result.stage_comm) comm.push_back(comm_json(m));
  report.set("comm", std::move(comm));

  util::Json chrysalis = util::Json::object();
  chrysalis.set("graph_from_fasta", gff_json(options, result.gff_timing));
  chrysalis.set("reads_to_transcripts", r2t_json(options, result.r2t_timing));
  report.set("chrysalis", std::move(chrysalis));
  return report;
}

void write_run_report(const std::string& path, const util::Json& report) {
  io::write_file(path, report.dump(2) + "\n");
}

util::Json load_run_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_run_report: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  util::Json report = util::Json::parse(buf.str());
  const util::Json* version = report.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    throw std::runtime_error("load_run_report: '" + path + "' has no schema_version");
  }
  if (version->as_int() < 1 || version->as_int() > kReportSchemaVersion) {
    throw std::runtime_error("load_run_report: unsupported schema_version " +
                             std::to_string(version->as_int()) + " in '" + path + "'");
  }
  return report;
}

void summarize_report(const util::Json& report, std::ostream& out) {
  out << "run report: schema " << report.at("schema_version").as_int() << ", nranks "
      << report.at("nranks").as_int() << ", model_threads_per_rank "
      << report.at("model_threads_per_rank").as_int() << '\n';

  auto join = [](const util::Json& arr) {
    std::string s;
    for (const auto& v : arr.items()) {
      if (!s.empty()) s += ", ";
      s += v.as_string();
    }
    return s.empty() ? std::string("(none)") : s;
  };
  // Schema v3 job attribution; absent for standalone runs.
  if (const util::Json* job_id = report.find("job_id")) {
    out << "job:             " << job_id->as_string() << " (tenant "
        << report.at("tenant").as_string() << ", " << report.at("preemptions").as_int()
        << " preemption(s))\n";
    // Schema v4 dispatch history; absent in v3 reports.
    if (const util::Json* outcome = report.find("outcome")) {
      out << "outcome:         " << outcome->as_string() << " after "
          << report.at("attempts").as_int() << " attempt(s)"
          << (report.at("recovered").as_bool() ? ", recovered from journal" : "") << '\n';
    }
  }
  out << "stages executed: " << join(report.at("stages_executed")) << '\n';
  out << "stages resumed:  " << join(report.at("stages_resumed")) << '\n';
  out << "stage retries:   " << report.at("stage_retries").as_int() << '\n';
  // Schema v2 fields; a v1 report simply lacks them.
  if (const util::Json* io_retries = report.find("io_retries")) {
    out << "io retries:      " << io_retries->as_int() << '\n';
  }
  if (const util::Json* trace_file = report.find("trace_file")) {
    out << "trace file:      " << trace_file->as_string() << '\n';
  }
  if (const util::Json* parse = report.find("parse")) {
    out << "parse (" << parse->at("policy").as_string()
        << "): " << parse->at("records_ok").as_int() << " ok, "
        << parse->at("records_quarantined").as_int() << " quarantined, "
        << parse->at("records_repaired").as_int() << " repaired";
    if (parse->at("records_quarantined").as_int() > 0) {
      out << " [";
      bool first = true;
      for (const auto& [name, count] : parse->at("quarantined").members()) {
        if (count.as_int() == 0) continue;
        if (!first) out << ", ";
        first = false;
        out << name << "=" << count.as_int();
      }
      out << "]";
    }
    out << '\n';
  }
  out << '\n';

  // Per-stage imbalance table from the comm section.
  const auto& comm = report.at("comm").items();
  if (comm.empty()) {
    out << "no hybrid stages ran (nranks == 1 or all stages resumed); no per-rank"
           " communication was recorded\n";
  } else {
    out << std::left << std::setw(32) << "stage" << std::right << std::setw(6) << "ranks"
        << std::setw(12) << "max(virt)" << std::setw(12) << "mean(virt)" << std::setw(7)
        << "skew" << std::setw(14) << "sent(B)" << std::setw(14) << "recv(B)"
        << std::setw(10) << "wait(s)" << '\n';
    for (const auto& stage : comm) {
      std::int64_t sent = 0, received = 0;
      double wait = 0.0;
      for (const auto& rank : stage.at("ranks").items()) {
        for (const auto& [name, op] : rank.at("ops").members()) {
          sent += op.at("bytes_sent").as_int();
          received += op.at("bytes_received").as_int();
          wait += op.at("wait_s").as_double();
        }
      }
      out << std::left << std::setw(32) << stage.at("stage").as_string() << std::right
          << std::setw(6) << stage.at("nranks").as_int() << std::fixed << std::setprecision(4)
          << std::setw(12) << stage.at("max_virtual_s").as_double() << std::setw(12)
          << stage.at("mean_virtual_s").as_double() << std::setprecision(2) << std::setw(7)
          << stage.at("skew_ratio").as_double() << std::setw(14) << sent << std::setw(14)
          << received << std::setprecision(4) << std::setw(10) << wait << '\n';
    }
  }

  // Chrysalis pooling volumes (the paper's Section III.B/III.C traffic).
  // Absent from the server's minimal v4 terminal reports (no run happened).
  const util::Json* chrysalis_section = report.find("chrysalis");
  if (chrysalis_section == nullptr) return;
  const auto sum_ints = [](const util::Json& arr) {
    std::int64_t total = 0;
    for (const auto& v : arr.items()) total += v.as_int();
    return total;
  };
  const auto& gff = chrysalis_section->at("graph_from_fasta");
  const auto& r2t = chrysalis_section->at("reads_to_transcripts");
  out << "\nchrysalis pooling:\n"
      << "  graph_from_fasta welds:   " << sum_ints(gff.at("weld_bytes_contributed"))
      << " B contributed -> " << gff.at("weld_bytes_pooled").as_int() << " B pooled\n"
      << "  graph_from_fasta matches: " << sum_ints(gff.at("match_bytes_contributed"))
      << " B contributed -> " << gff.at("match_bytes_pooled").as_int() << " B pooled\n"
      << "  reads_to_transcripts:     " << sum_ints(r2t.at("assignment_bytes_contributed"))
      << " B contributed -> " << r2t.at("assignment_bytes_pooled").as_int() << " B pooled\n";
  // Additive gff_sharding/owner-routing fields; reports from before the
  // owner-computes strategy simply lack them.
  if (const util::Json* sharding = gff.find("gff_sharding")) {
    out << "  graph_from_fasta sharding: " << sharding->as_string();
    if (const util::Json* routed = gff.find("weld_bytes_routed")) {
      out << " (" << routed->as_int() << " B welds routed, "
          << gff.at("dsu_edge_bytes_routed").as_int() << " B dsu edges, "
          << gff.at("dsu_rounds").as_int() << " dsu round(s))";
    }
    out << '\n';
  }
  if (!r2t.at("rank_chunks").items().empty()) {
    out << "  reads_to_transcripts chunks per rank:";
    for (const auto& v : r2t.at("rank_chunks").items()) out << ' ' << v.as_int();
    out << '\n';
  }
  // Additive r2t_mode/index fields; reports from before the quasi-mapping
  // index simply lack them.
  if (const util::Json* mode = r2t.find("r2t_mode")) {
    out << "  reads_to_transcripts mode: " << mode->as_string();
    if (const util::Json* source = r2t.find("index_source")) {
      out << " (index " << source->as_string() << ", build "
          << r2t.at("index_build_s").as_double() << " s, load "
          << r2t.at("index_load_s").as_double() << " s)";
    }
    out << '\n';
  }
}

util::Json aggregate_run_reports(const std::vector<util::Json>& reports) {
  struct TenantTotals {
    std::int64_t jobs = 0;
    double wall_s = 0.0;
    double cpu_s = 0.0;
    std::int64_t comm_bytes_sent = 0;
    std::int64_t comm_bytes_received = 0;
    std::int64_t stage_retries = 0;
    std::int64_t io_retries = 0;
    std::int64_t preemptions = 0;
    double max_skew = 1.0;
    // Index-mode job split: cold builds vs. warm loads (mmap or the serve
    // layer's shared cache). Both stay 0 for vote-mode jobs.
    std::int64_t index_cold_builds = 0;
    std::int64_t index_warm_loads = 0;
    // Schema v4 reliability rollup: total dispatches, job-level retries
    // (dispatches beyond each job's first), and terminal kill reasons.
    // A tenant with outsized attempts/quarantines relative to its job
    // count is the poison-tenant signature operators scan for.
    std::int64_t attempts = 0;
    std::int64_t job_retries = 0;
    std::int64_t quarantined = 0;
    std::int64_t deadline_kills = 0;
    std::int64_t hung_kills = 0;
    std::int64_t recovered = 0;
    // Per-job wall seconds (sum of the job's phases), for the latency
    // quantile columns. Jobs with no phases (e.g. killed before any stage
    // finished) contribute nothing rather than a misleading 0s sample.
    std::vector<double> job_walls;
  };
  // Insertion order preserved so the table is deterministic for a given
  // report order (the aggregate caller sorts its directory scan).
  std::vector<std::pair<std::string, TenantTotals>> tenants;
  auto totals_for = [&](const std::string& tenant) -> TenantTotals& {
    for (auto& [name, totals] : tenants) {
      if (name == tenant) return totals;
    }
    tenants.emplace_back(tenant, TenantTotals{});
    return tenants.back().second;
  };

  for (const auto& report : reports) {
    const util::Json* tenant_field = report.find("tenant");
    TenantTotals& t = totals_for(
        tenant_field != nullptr && !tenant_field->as_string().empty()
            ? tenant_field->as_string()
            : std::string("-"));
    ++t.jobs;
    double job_wall = 0.0;
    const auto& phases = report.at("phases").items();
    for (const auto& phase : phases) {
      job_wall += phase.at("wall_s").as_double();
      t.cpu_s += phase.at("cpu_s").as_double();
    }
    t.wall_s += job_wall;
    if (!phases.empty()) t.job_walls.push_back(job_wall);
    for (const auto& stage : report.at("comm").items()) {
      const double skew = stage.at("skew_ratio").as_double();
      t.max_skew = skew > t.max_skew ? skew : t.max_skew;
      for (const auto& rank : stage.at("ranks").items()) {
        for (const auto& member : rank.at("ops").members()) {
          t.comm_bytes_sent += member.second.at("bytes_sent").as_int();
          t.comm_bytes_received += member.second.at("bytes_received").as_int();
        }
      }
    }
    t.stage_retries += report.at("stage_retries").as_int();
    if (const util::Json* io_retries = report.find("io_retries")) {
      t.io_retries += io_retries->as_int();
    }
    if (const util::Json* preemptions = report.find("preemptions")) {
      t.preemptions += preemptions->as_int();
    }
    if (const util::Json* attempts = report.find("attempts")) {
      t.attempts += attempts->as_int();
      t.job_retries += attempts->as_int() > 1 ? attempts->as_int() - 1 : 0;
    }
    if (const util::Json* outcome = report.find("outcome")) {
      const std::string& o = outcome->as_string();
      if (o == "quarantined") ++t.quarantined;
      else if (o == "deadline_exceeded") ++t.deadline_kills;
      else if (o == "hung") ++t.hung_kills;
    }
    if (const util::Json* recovered = report.find("recovered")) {
      if (recovered->as_bool()) ++t.recovered;
    }
    if (const util::Json* chrysalis = report.find("chrysalis")) {
      if (const util::Json* r2t = chrysalis->find("reads_to_transcripts")) {
        if (const util::Json* source = r2t->find("index_source")) {
          if (source->as_string() == "built") ++t.index_cold_builds;
          else ++t.index_warm_loads;
        }
      }
    }
  }

  util::Json out = util::Json::object();
  out.set("reports", static_cast<std::int64_t>(reports.size()));
  util::Json rows = util::Json::array();
  for (auto& [name, t] : tenants) {
    util::Json row = util::Json::object();
    row.set("tenant", name);
    row.set("jobs", t.jobs);
    row.set("wall_s", t.wall_s);
    row.set("cpu_s", t.cpu_s);
    std::sort(t.job_walls.begin(), t.job_walls.end());
    row.set("wall_p50_s", util::percentile(t.job_walls, 0.50));
    row.set("wall_p95_s", util::percentile(t.job_walls, 0.95));
    row.set("wall_p99_s", util::percentile(t.job_walls, 0.99));
    row.set("comm_bytes_sent", t.comm_bytes_sent);
    row.set("comm_bytes_received", t.comm_bytes_received);
    row.set("stage_retries", t.stage_retries);
    row.set("io_retries", t.io_retries);
    row.set("preemptions", t.preemptions);
    row.set("max_skew", t.max_skew);
    row.set("index_cold_builds", t.index_cold_builds);
    row.set("index_warm_loads", t.index_warm_loads);
    row.set("attempts", t.attempts);
    row.set("job_retries", t.job_retries);
    row.set("quarantined", t.quarantined);
    row.set("deadline_kills", t.deadline_kills);
    row.set("hung_kills", t.hung_kills);
    row.set("recovered", t.recovered);
    rows.push_back(std::move(row));
  }
  out.set("tenants", std::move(rows));
  return out;
}

void summarize_aggregate(const util::Json& aggregate, std::ostream& out) {
  out << "aggregated " << aggregate.at("reports").as_int() << " run report(s)\n\n";
  const auto& tenants = aggregate.at("tenants").items();
  if (tenants.empty()) {
    out << "no reports found\n";
    return;
  }
  out << std::left << std::setw(16) << "tenant" << std::right << std::setw(6) << "jobs"
      << std::setw(11) << "wall(s)" << std::setw(11) << "cpu(s)" << std::setw(9)
      << "p50(s)" << std::setw(9) << "p95(s)" << std::setw(9) << "p99(s)"
      << std::setw(14)
      << "sent(B)" << std::setw(14) << "recv(B)" << std::setw(9) << "retries"
      << std::setw(9) << "io-rtr" << std::setw(9) << "preempt" << std::setw(9)
      << "skew" << std::setw(9) << "ix-cold" << std::setw(9) << "ix-warm"
      << std::setw(9) << "att" << std::setw(9) << "job-rtr" << std::setw(9) << "quar"
      << std::setw(9) << "ddl" << std::setw(9) << "hung" << std::setw(9) << "recov"
      << '\n';
  for (const auto& row : tenants) {
    out << std::left << std::setw(16) << row.at("tenant").as_string() << std::right
        << std::setw(6) << row.at("jobs").as_int() << std::fixed << std::setprecision(3)
        << std::setw(11) << row.at("wall_s").as_double() << std::setw(11)
        << row.at("cpu_s").as_double() << std::setw(9)
        << row.at("wall_p50_s").as_double() << std::setw(9)
        << row.at("wall_p95_s").as_double() << std::setw(9)
        << row.at("wall_p99_s").as_double() << std::setw(14)
        << row.at("comm_bytes_sent").as_int() << std::setw(14)
        << row.at("comm_bytes_received").as_int() << std::setw(9)
        << row.at("stage_retries").as_int() << std::setw(9)
        << row.at("io_retries").as_int() << std::setw(9)
        << row.at("preemptions").as_int() << std::setprecision(2) << std::setw(9)
        << row.at("max_skew").as_double() << std::setw(9)
        << row.at("index_cold_builds").as_int() << std::setw(9)
        << row.at("index_warm_loads").as_int() << std::setw(9)
        << row.at("attempts").as_int() << std::setw(9)
        << row.at("job_retries").as_int() << std::setw(9)
        << row.at("quarantined").as_int() << std::setw(9)
        << row.at("deadline_kills").as_int() << std::setw(9)
        << row.at("hung_kills").as_int() << std::setw(9)
        << row.at("recovered").as_int() << '\n';
  }
}

}  // namespace trinity::pipeline
