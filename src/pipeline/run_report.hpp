#pragma once
// The machine-readable run report: one JSON document per pipeline run,
// written to `<work_dir>/run_report.json` by default.
//
// The paper diagnosed its load imbalance by hand — Collectl plots plus
// per-rank printf timing (Figures 7-11). The report is the systematic
// version: everything those figures need (per-rank virtual times, skew
// ratios, per-operation communication volume, the phase timeline with its
// counters) in one versioned document that the `trinity_report` summarizer
// and the figure benches consume without re-running anything.
//
// The schema is documented field-by-field in docs/OBSERVABILITY.md; the
// `schema_version` constant below is the single source of truth and
// scripts/check.sh fails when the docs drift from it. Compatibility rule:
// adding fields is a minor change (readers must ignore unknown keys),
// removing or re-typing one bumps the version.

#include <ostream>
#include <string>
#include <vector>

#include "pipeline/trinity_pipeline.hpp"
#include "util/json.hpp"

namespace trinity::pipeline {

/// Version of the run-report schema this library writes. Must match the
/// "Schema version" stated in docs/OBSERVABILITY.md (enforced by
/// scripts/check.sh) and the "schema_version" field of every emitted
/// report (enforced by run_report_test). v3 adds the optional job
/// attribution fields `job_id` / `tenant` / `preemptions` (present only
/// for trinity_serve job runs); v4 extends that job block with
/// `attempts` / `outcome` / `recovered`, and lets the job server write a
/// minimal report (empty phases/comm) for jobs that ended without a
/// pipeline run — quarantined, deadline-killed, hung, or permanently
/// failed — so the ledger is reconstructible for every terminal job.
/// v1-v3 reports keep loading unchanged.
inline constexpr int kReportSchemaVersion = 4;

/// Builds the report document from a finished run. Pure: no I/O.
[[nodiscard]] util::Json build_run_report(const PipelineOptions& options,
                                          const PipelineResult& result);

/// Pretty-prints `report` to `path` (two-space indent, trailing newline).
void write_run_report(const std::string& path, const util::Json& report);

/// Reads and parses a report file. Throws std::runtime_error when the file
/// is unreadable, is not JSON, or declares a schema_version this library
/// does not understand.
[[nodiscard]] util::Json load_run_report(const std::string& path);

/// Human-readable digest of a report: per-stage imbalance table (max/mean
/// rank virtual time, skew ratio, bytes sent/received, wait time) plus the
/// Chrysalis pooling volumes. This is what `trinity_report` prints.
void summarize_report(const util::Json& report, std::ostream& out);

/// Rolls many run reports up into one per-tenant accounting document —
/// the `trinity_report --aggregate` view over a trinity_serve root dir.
/// Reports without v3 job attribution land under the tenant "-". Pure:
/// callers load the reports (load_run_report) and pass the parsed trees.
/// The result is a JSON object:
///   {"reports": N, "tenants": [{"tenant", "jobs", "wall_s", "cpu_s",
///    "comm_bytes_sent", "comm_bytes_received", "stage_retries",
///    "io_retries", "preemptions", "max_skew"}, ...]}
/// where wall_s sums the reports' phase walls, comm bytes sum every
/// comm[].ranks[].ops row, and max_skew is the worst comm[] skew_ratio
/// seen across the tenant's reports (1.0 when no hybrid stage ran).
[[nodiscard]] util::Json aggregate_run_reports(const std::vector<util::Json>& reports);

/// Prints the aggregate as a per-tenant table.
void summarize_aggregate(const util::Json& aggregate, std::ostream& out);

}  // namespace trinity::pipeline
