#pragma once
// The Trinity workflow driver: Jellyfish -> Inchworm -> Chrysalis (Bowtie,
// GraphFromFasta, ReadsToTranscripts, FastaToDebruijn/QuantifyGraph) ->
// Butterfly, with the Trinity.pl-style nprocs switch the paper added:
// nranks == 1 runs the original shared-memory (OpenMP-only) code paths,
// nranks > 1 runs the hybrid simpi+OpenMP code paths, "prepending" the
// Chrysalis sub-steps with a simulated mpirun.
//
// Like Trinity, stages exchange data through files in a work directory
// (the reads FASTA is written once and then *streamed* by
// ReadsToTranscripts), and a ResourceTrace records the wall/CPU/RSS
// timeline that Figures 2 and 11 plot.
//
// Checkpoint/restart: those stage files double as checkpoints. With
// checkpointing on (default), every completed stage is recorded in a
// RunManifest (work_dir/run_manifest.jsonl, atomic commits). A re-launch
// with `resume = true` validates the manifest against the current options
// fingerprint and the on-disk artifacts, skips every stage that is still
// valid, and re-runs from the first invalid one — so a run killed by a
// rank failure resumes instead of starting over. In-process, a bounded
// retry/backoff driver re-launches a stage whose simpi world aborted
// (simpi::AbortedError / RankFaultError); `fault` + `fault_stage` inject
// such failures for testing.

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "align/mpi_bowtie.hpp"
#include "checkpoint/manifest.hpp"
#include "checkpoint/retry.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "butterfly/butterfly.hpp"
#include "io/error.hpp"
#include "io/fault_plan.hpp"
#include "seq/fasta.hpp"
#include "simpi/cost_model.hpp"
#include "simpi/fault.hpp"
#include "util/resource_trace.hpp"

namespace trinity::obs {
class MetricsRegistry;
}  // namespace trinity::obs

namespace trinity::pipeline {

/// Thrown out of run_pipeline when the run's preempt token (see
/// PipelineOptions::preempt) was set: the pipeline stopped at the next
/// stage boundary, after every completed stage was checkpointed. A
/// re-launch with `resume = true` continues from exactly that boundary —
/// the mechanism trinity_serve uses for priority preemption
/// (checkpoint -> requeue -> resume).
class PreemptedError : public std::runtime_error {
 public:
  explicit PreemptedError(std::string stage)
      : std::runtime_error("pipeline preempted before stage '" + stage + "'"),
        stage_(std::move(stage)) {}

  /// The stage the pipeline was about to run when it stopped.
  [[nodiscard]] const std::string& stage() const { return stage_; }

 private:
  std::string stage_;
};

/// Thrown out of run_pipeline when the run's deadline token (see
/// PipelineOptions::deadline) was set: the serve watchdog decided the job
/// ran past its deadline or stopped making progress. Like preemption, the
/// pipeline stops at the next cancellation point with every completed
/// stage checkpointed — but the server treats this as a terminal kill
/// (DeadlineExceeded/Hung outcome), not a requeue.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(std::string stage)
      : std::runtime_error("pipeline deadline exceeded before stage '" + stage + "'"),
        stage_(std::move(stage)) {}

  /// The stage the pipeline was about to run when it was cancelled.
  [[nodiscard]] const std::string& stage() const { return stage_; }

 private:
  std::string stage_;
};

/// Whole-pipeline configuration.
struct PipelineOptions {
  int k = 25;                      ///< k-mer size used by every stage
  std::uint32_t min_kmer_count = 2;   ///< Inchworm error-pruning threshold
  std::uint32_t min_weld_support = 2; ///< GraphFromFasta weld support
  std::size_t max_mem_reads = 5000;   ///< ReadsToTranscripts chunk size
  bool bowtie_scaffolding = true;  ///< feed Bowtie pairs into clustering

  int nranks = 1;                  ///< 1 = original shared-memory Trinity
  int model_threads_per_rank = 16; ///< simulated per-node thread count
  int omp_threads = 0;             ///< real OpenMP threads (0 = auto)
  simpi::CommCostModel comm;       ///< interconnect model for hybrid runs

  std::string work_dir;            ///< stage file exchange; created if absent
  std::uint64_t run_seed = 0;      ///< models Trinity's run-to-run variation
  int trace_sample_interval_ms = 25;  ///< RSS sampler period (0 disables)

  // Strategy selection (the paper's published schemes by default; the
  // alternatives are its discarded attempts and future-work directions,
  // all implemented — see DESIGN.md).
  chrysalis::Distribution gff_distribution = chrysalis::Distribution::kChunkedRoundRobin;
  /// How GraphFromFasta moves weld data between ranks (--gff-sharding).
  /// Scheduling-only — all strategies produce byte-identical components
  /// (the pipeline tests and bench_gff_shard assert it), so it is excluded
  /// from the options fingerprint like the other strategy selections.
  /// `overlap = false` degrades kPooledOverlap to kPooled (the legacy
  /// --no-overlap behavior) but leaves kOwner and explicit kPooled alone.
  chrysalis::ShardingStrategy gff_sharding = chrysalis::ShardingStrategy::kPooledOverlap;
  bool gff_hybrid_setup = false;  ///< cooperative setup (future work)
  chrysalis::R2TStrategy r2t_strategy = chrysalis::R2TStrategy::kRedundantStreaming;
  chrysalis::R2TOutputMode r2t_output_mode = chrysalis::R2TOutputMode::kPerRankConcat;
  /// ReadsToTranscripts engine: voting (the paper's scheme) or the
  /// persistent quasi-mapping TranscriptIndex. Assignments are
  /// bit-identical across modes (the benches assert it), so mode and
  /// lifecycle are scheduling-only and excluded from the fingerprint.
  chrysalis::R2TMode r2t_mode = chrysalis::R2TMode::kVote;
  /// Index lifecycle under r2t_mode == kIndex: build | load | auto. The
  /// index file lives at <work_dir>/transcript_index.bin, so `auto` makes
  /// repeat runs over the same work dir skip the build via mmap.
  chrysalis::IndexLifecycle r2t_index = chrysalis::IndexLifecycle::kAuto;
  /// Read-only shared index cache (the serve layer's; see
  /// docs/INDEXING.md). When set, an index cached under this run's options
  /// fingerprint is reused directly, and a freshly built one is published
  /// back. Scheduling-only; null for standalone runs.
  std::shared_ptr<chrysalis::TranscriptIndexCache> index_cache;
  align::BowtieSplit bowtie_split = align::BowtieSplit::kTargets;
  std::uint32_t butterfly_min_node_support = 0;  ///< read reconciliation
  bool butterfly_require_paired_support = false; ///< paired reconciliation
  /// Communication/computation overlap in the Chrysalis hot paths: the
  /// GraphFromFasta weld pooling runs as a nonblocking Allgatherv hidden
  /// behind loop 2's extraction prefix, and ReadsToTranscripts
  /// double-buffers chunk parsing against classification. Scheduling-only:
  /// outputs are bit-identical with it on or off (the fig07/fig09 benches
  /// assert this), so it is excluded from the options fingerprint.
  bool overlap = true;

  /// Cost-model calibration for the trace benches (Figures 2 and 11):
  /// per-item kernel repeats for the three Chrysalis sub-steps, restoring
  /// the production tools' much heavier per-item costs so the stage *shape*
  /// (Chrysalis dominating the pipeline) reproduces. All default to 1.
  int bowtie_kernel_repeats = 1;
  int gff_kernel_repeats = 1;
  int r2t_kernel_repeats = 1;

  // --- checkpoint / restart ---------------------------------------------------

  /// Record each completed stage in work_dir/run_manifest.jsonl. The only
  /// cost is hashing the stage artifacts (measured as "<stage>.checkpoint"
  /// trace phases and by bench_checkpoint_overhead).
  bool checkpoint = true;
  /// Skip stages whose manifest record validates against the options
  /// fingerprint and on-disk artifacts; re-run from the first invalid one.
  bool resume = false;
  /// In-process recovery: a stage whose simpi world aborts is re-launched
  /// up to retry.max_attempts times with exponential backoff.
  checkpoint::RetryPolicy retry;
  /// Injected rank fault (testing/benching); disabled by default.
  simpi::FaultPlan fault;
  /// Stage whose simpi world receives `fault` ("chrysalis.bowtie",
  /// "chrysalis.graph_from_fasta", or "chrysalis.reads_to_transcripts").
  std::string fault_stage;
  /// Injected storage fault (testing/benching); disabled by default.
  /// Installed process-wide for the duration of the run (see
  /// io::ScopedFaultInjection) and armed once, so a transient fault fires
  /// exactly once even when the retry driver re-launches the stage.
  /// Transient faults (eio, short_write) are retried in process; permanent
  /// ones (enospc, torn_rename) fail the run with a typed io::IoError,
  /// leaving the checkpoints for a `resume = true` re-launch.
  io::IoFaultPlan io_fault;

  // --- preemption (job-server cancellation points) ----------------------------

  /// Cooperative cancellation token. When non-null and set to true, the
  /// run stops at the next stage boundary by throwing PreemptedError —
  /// after every completed stage committed its checkpoint, so a
  /// `resume = true` re-launch continues from that exact boundary. Stage
  /// boundaries are the only cancellation points: a stage that already
  /// started runs to completion (its simpi world is never torn down
  /// mid-collective). Null (the default) disables preemption entirely.
  /// Scheduling-only: excluded from the options fingerprint.
  std::shared_ptr<std::atomic<bool>> preempt;

  /// Deadline/watchdog cancellation token, same cooperative contract as
  /// `preempt` but a different verdict: when set, the run throws
  /// DeadlineExceededError at the next cancellation point (stage
  /// boundaries, and the injected-hang poll loop below). The serve
  /// watchdog sets it for jobs past their `deadline-s` or hung past
  /// `hang-timeout-s`. Scheduling-only: excluded from the fingerprint.
  std::shared_ptr<std::atomic<bool>> deadline;

  /// Injected wedge (testing the watchdog): when `hang_stage` names a
  /// stage, the run sleeps `hang_seconds` inside that stage — after its
  /// boundary checks, before its compute, with no manifest progress — in
  /// small increments that poll both cancellation tokens. Models a stage
  /// stuck on a dead mount or a livelocked collective while staying
  /// cancellable. Scheduling-only; disabled by default.
  std::string hang_stage;
  double hang_seconds = 0.0;

  // --- input robustness -------------------------------------------------------

  /// How FASTA/FASTQ readers treat malformed records (seq/fasta.hpp):
  /// kStrict throws io::ParseError with path/line/byte-offset; kTolerant
  /// quarantines and completes; kRepair additionally fixes what it can.
  /// Applies to the input reads file and the ReadsToTranscripts stream.
  seq::ParsePolicy parse_policy = seq::ParsePolicy::kStrict;

  // --- observability ----------------------------------------------------------

  /// Write the versioned JSON run report (docs/OBSERVABILITY.md) when the
  /// run finishes: phase timeline, per-rank communication counters, and
  /// the Chrysalis work-distribution metrics.
  bool emit_report = true;
  /// Report destination; empty means `<work_dir>/run_report.json`.
  std::string report_path;
  /// Job attribution (run-report schema v3, docs/OBSERVABILITY.md and
  /// docs/SERVING.md): when a run belongs to a trinity_serve job, the
  /// server stamps the job id, the owning tenant, and how many times the
  /// job was preempted before this dispatch. Purely observational — the
  /// fields flow into run_report.json (and from there into the per-tenant
  /// accounting roll-up) and never affect results or the options
  /// fingerprint. Empty/zero (the default) for standalone runs, and the
  /// report fields are omitted then.
  std::string job_id;
  std::string tenant;
  int preemptions = 0;
  /// Which dispatch of the job this run is, 1-based (run-report schema v4):
  /// incremented by the serve retry loop each time a transient job failure
  /// requeues the job. 1 for standalone runs and first dispatches.
  int attempts = 1;
  /// True when this dispatch resumed work journaled by a previous server
  /// process (run-report schema v4): the job was re-admitted from the
  /// on-disk journal after a crash/restart, not submitted to this process.
  bool recovered = false;

  /// Live metrics registry (docs/OBSERVABILITY.md "Live metrics"). When
  /// set, StageDriver publishes a per-job stage-progress heartbeat gauge
  /// and a per-stage duration histogram at stage boundaries, and the
  /// hybrid stages bridge their per-rank CommStats into counters. The
  /// serve layer points this at the server's registry; null (the default)
  /// removes every hook. The registry must outlive the run.
  /// Scheduling-only: excluded from the options fingerprint.
  obs::MetricsRegistry* metrics = nullptr;

  /// Distributed span tracing (docs/OBSERVABILITY.md "Distributed trace"):
  /// empty (the default) disables tracing entirely — instrumented code
  /// collapses to one atomic load per hook. Non-empty installs a
  /// trace::SpanRecorder for the run and writes a Chrome trace-event JSON
  /// (loadable in Perfetto / chrome://tracing, minable by trinity_trace) to
  /// this path when the run finishes; a relative path is joined to
  /// work_dir. The report gains an additive "trace_file" field.
  std::string trace_path;
};

/// Fingerprint over every output-affecting option plus a digest of the
/// input reads. Scheduling-only knobs (nranks, thread counts, cost model,
/// kernel repeats, distribution/strategy selections) are excluded: the
/// paper's equivalence claim — enforced by the pipeline tests — is that
/// they never change results, so resuming under a different schedule is
/// legitimate.
[[nodiscard]] std::uint64_t options_fingerprint(const PipelineOptions& options,
                                                const std::vector<seq::Sequence>& reads);

/// Manifest filename inside the work directory.
inline constexpr const char* kManifestFileName = "run_manifest.jsonl";

/// Default run-report filename inside the work directory.
inline constexpr const char* kReportFileName = "run_report.json";

/// Per-rank communication counters for one hybrid stage — the simpi
/// RankResults of that stage's world, kept verbatim so imbalance can be
/// recomputed from first principles. Stages run with nranks == 1 (and
/// stages skipped on resume) have no entry.
struct StageCommMetrics {
  std::string stage;                     ///< e.g. "chrysalis.graph_from_fasta"
  std::vector<simpi::RankResult> ranks;  ///< one entry per rank, in rank order

  /// Max-over-mean rank virtual time: 1.0 = perfectly balanced.
  [[nodiscard]] double skew_ratio() const { return simpi::skew_ratio(ranks); }
  /// Byte totals for one operation, summed over ranks.
  [[nodiscard]] std::uint64_t total_bytes_sent(simpi::CommOp op) const;
  [[nodiscard]] std::uint64_t total_bytes_received(simpi::CommOp op) const;
};

/// Everything a run produces, including the per-stage timings each figure
/// bench consumes.
struct PipelineResult {
  std::vector<seq::Sequence> contigs;                 ///< Inchworm output
  chrysalis::ComponentSet components;                 ///< Chrysalis bundles
  std::vector<chrysalis::ReadAssignment> assignments; ///< ReadsToTranscripts
  std::vector<seq::Sequence> transcripts;             ///< Butterfly output

  align::DistributedBowtieTiming bowtie_timing;  ///< zeros for nranks == 1
  double bowtie_shared_seconds = 0.0;            ///< serial Bowtie time (nranks == 1)
  chrysalis::GffTiming gff_timing;
  chrysalis::R2TTiming r2t_timing;

  std::vector<util::PhaseRecord> trace;  ///< wall/CPU/RSS per stage

  /// Per-rank communication counters for each hybrid stage executed this
  /// run, in pipeline order (final attempt when a stage was retried).
  std::vector<StageCommMetrics> stage_comm;
  /// Path of the emitted JSON run report; empty when emit_report is false.
  std::string report_path;
  /// Path of the emitted Chrome trace; empty when tracing was disabled.
  std::string trace_file;

  /// The comm metrics for `stage`, or nullptr when the stage ran without
  /// a simpi world (nranks == 1) or was resumed from a checkpoint.
  [[nodiscard]] const StageCommMetrics* find_stage_comm(const std::string& stage) const;

  /// Stage execution log: stages recomputed this run, in pipeline order.
  std::vector<std::string> stages_executed;
  /// Stages skipped because their checkpoint validated (resume runs).
  std::vector<std::string> stages_resumed;
  /// Stage re-launches performed by the retry driver (0 in fault-free runs).
  int stage_retries = 0;
  /// Subset of stage_retries caused by transient io::IoError (the retry
  /// driver fails fast on permanent ones).
  int io_retries = 0;
  /// Parse quarantine/repair counts over the whole run: the input-file read
  /// (run_pipeline_from_file) merged with the ReadsToTranscripts stream.
  /// All-zero under kStrict (a malformed record throws instead).
  io::ParseDiagnostics parse;
  /// Fingerprint this run recorded/validated manifest entries under.
  std::uint64_t options_fingerprint = 0;

  /// Modeled Chrysalis time (Bowtie + GraphFromFasta + ReadsToTranscripts),
  /// the quantity the paper's abstract reduces from >50 h to <5 h.
  [[nodiscard]] double chrysalis_virtual_seconds() const;
};

/// Runs the pipeline on in-memory reads. The reads are also written to
/// `<work_dir>/reads.fa` for the streaming stages.
PipelineResult run_pipeline(const std::vector<seq::Sequence>& reads,
                            const PipelineOptions& options);

/// Runs the pipeline on a FASTA/FASTQ file, read under
/// `options.parse_policy`; quarantine counts from that read surface in
/// PipelineResult::parse and the run report.
PipelineResult run_pipeline_from_file(const std::string& reads_path,
                                      const PipelineOptions& options);

}  // namespace trinity::pipeline
