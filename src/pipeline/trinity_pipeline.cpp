#include "pipeline/trinity_pipeline.hpp"

#include <exception>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "align/sam_io.hpp"
#include "checkpoint/fingerprint.hpp"
#include "io/io_file.hpp"
#include "obs/metrics.hpp"
#include "pipeline/run_report.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/span_recorder.hpp"
#include "chrysalis/components_io.hpp"
#include "chrysalis/scaffold.hpp"
#include "inchworm/inchworm.hpp"
#include "kmer/counter.hpp"
#include "seq/fasta.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace trinity::pipeline {

std::uint64_t StageCommMetrics::total_bytes_sent(simpi::CommOp op) const {
  std::uint64_t total = 0;
  for (const auto& r : ranks) total += r.comm.of(op).bytes_sent;
  return total;
}

std::uint64_t StageCommMetrics::total_bytes_received(simpi::CommOp op) const {
  std::uint64_t total = 0;
  for (const auto& r : ranks) total += r.comm.of(op).bytes_received;
  return total;
}

const StageCommMetrics* PipelineResult::find_stage_comm(const std::string& stage) const {
  for (const auto& m : stage_comm) {
    if (m.stage == stage) return &m;
  }
  return nullptr;
}

double PipelineResult::chrysalis_virtual_seconds() const {
  const double bowtie =
      bowtie_shared_seconds > 0.0 ? bowtie_shared_seconds : bowtie_timing.total_seconds();
  return bowtie + gff_timing.total_seconds() + r2t_timing.total_seconds();
}

std::uint64_t options_fingerprint(const PipelineOptions& options,
                                  const std::vector<seq::Sequence>& reads) {
  std::uint64_t reads_digest = util::kFnvOffsetBasis;
  for (const auto& r : reads) {
    reads_digest = util::fnv1a_append(reads_digest, r.name.data(), r.name.size());
    reads_digest = util::fnv1a_append(reads_digest, "\n", 1);
    reads_digest = util::fnv1a_append(reads_digest, r.bases.data(), r.bases.size());
    reads_digest = util::fnv1a_append(reads_digest, "\n", 1);
  }
  return checkpoint::FingerprintBuilder()
      .add("k", static_cast<std::int64_t>(options.k))
      .add("min_kmer_count", static_cast<std::uint64_t>(options.min_kmer_count))
      .add("min_weld_support", static_cast<std::uint64_t>(options.min_weld_support))
      .add("max_mem_reads", static_cast<std::uint64_t>(options.max_mem_reads))
      .add("bowtie_scaffolding", options.bowtie_scaffolding)
      .add("run_seed", options.run_seed)
      .add("butterfly_min_node_support",
           static_cast<std::uint64_t>(options.butterfly_min_node_support))
      .add("butterfly_require_paired_support", options.butterfly_require_paired_support)
      .add("reads", reads_digest)
      .digest();
}

namespace {

std::string ensure_work_dir(const PipelineOptions& options) {
  std::string dir = options.work_dir;
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "trinity_work").string();
  }
  std::filesystem::create_directories(dir);
  return dir;
}

// Stage artifact filenames (work-dir relative). components.txt follows the
// trinity_stages convention so the staged CLI and the pipeline interoperate.
constexpr const char* kReadsFile = "reads.fa";
constexpr const char* kKmersFile = "kmers.bin";
constexpr const char* kContigsFile = "inchworm.fa";
constexpr const char* kSamFile = "bowtie.sam";
constexpr const char* kComponentsFile = "components.txt";
constexpr const char* kAssignmentsFile = "readsToComponents.out.tsv";
// Cache artifacts of the index-mode ReadsToTranscripts (docs/INDEXING.md).
// Deliberately not stage outputs: a vote-mode resume over the same work
// dir must not invalidate on their absence.
constexpr const char* kIndexFile = "transcript_index.bin";
constexpr const char* kTranscriptsFile = "Trinity.fa";

/// Records a hybrid stage's per-rank results (replacing any earlier
/// attempt's entry, so a retried stage reports its final attempt) and
/// annotates the open trace phase with the headline counters
/// docs/OBSERVABILITY.md defines.
void record_stage_comm(const PipelineOptions& options, PipelineResult& result,
                       util::ResourceTrace& trace, const std::string& stage,
                       std::vector<simpi::RankResult> ranks) {
  StageCommMetrics metrics{stage, std::move(ranks)};
  std::uint64_t sent = 0, received = 0;
  double wait = 0.0;
  for (const auto& r : metrics.ranks) {
    sent += r.comm.total_bytes_sent();
    received += r.comm.total_bytes_received();
    wait += r.comm.total_wait_seconds();
  }
  // CommStats bridge (docs/OBSERVABILITY.md "Live metrics"): per-rank
  // bytes/wait become live counters at the hybrid stage's end, so an
  // external scraper sees rank-level communication skew while the job's
  // later stages are still running.
  if (options.metrics != nullptr) {
    for (const auto& r : metrics.ranks) {
      const std::string rank = std::to_string(r.rank);
      options.metrics
          ->counter("trinity_comm_stage_bytes_total",
                    "Bytes moved by a hybrid stage, per rank and direction",
                    {{"stage", stage}, {"rank", rank}, {"direction", "sent"}})
          .inc(static_cast<double>(r.comm.total_bytes_sent()));
      options.metrics
          ->counter("trinity_comm_stage_bytes_total",
                    "Bytes moved by a hybrid stage, per rank and direction",
                    {{"stage", stage}, {"rank", rank}, {"direction", "received"}})
          .inc(static_cast<double>(r.comm.total_bytes_received()));
      options.metrics
          ->counter("trinity_comm_stage_wait_seconds_total",
                    "Wall seconds a rank spent blocked in communication",
                    {{"stage", stage}, {"rank", rank}})
          .inc(r.comm.total_wait_seconds());
    }
  }
  trace.counter("skew_ratio", metrics.skew_ratio());
  trace.counter("comm_bytes_sent", static_cast<double>(sent));
  trace.counter("comm_bytes_received", static_cast<double>(received));
  trace.counter("comm_wait_s", wait);
  trace.counter(
      "allgatherv_bytes_received",
      static_cast<double>(metrics.total_bytes_received(simpi::CommOp::kAllgatherv)));
  trace.counter(
      "alltoallv_bytes_received",
      static_cast<double>(metrics.total_bytes_received(simpi::CommOp::kAlltoallv)));
  for (auto& m : result.stage_comm) {
    if (m.stage == stage) {
      m = std::move(metrics);
      return;
    }
  }
  result.stage_comm.push_back(std::move(metrics));
}

/// Orchestrates one pipeline run as a sequence of checkpointed stages.
///
/// Each stage declares its input/output artifacts and two bodies: compute
/// (run the stage, writing its outputs) and load (rebuild the in-memory
/// products from the outputs of a previous run). The driver decides per
/// stage whether to resume or execute, retries aborted simpi worlds, and
/// commits a manifest record after each completed stage.
class StageDriver {
 public:
  StageDriver(const PipelineOptions& options, std::string work_dir,
              util::ResourceTrace& trace, PipelineResult& result, std::string trace_ref,
              trace::SpanRecorder* recorder, double recorder_epoch_offset)
      : options_(options),
        work_dir_(std::move(work_dir)),
        manifest_path_(work_dir_ + "/" + kManifestFileName),
        trace_(trace),
        result_(result),
        trace_ref_(std::move(trace_ref)),
        recorder_(recorder),
        recorder_epoch_offset_(recorder_epoch_offset) {
    if (options_.checkpoint || options_.resume) {
      manifest_ = checkpoint::RunManifest::load(manifest_path_);
      if (manifest_.dropped_lines() > 0) {
        LOG_WARN() << "pipeline: dropped " << manifest_.dropped_lines()
                   << " corrupt manifest line(s) in " << manifest_path_;
      }
    } else {
      manifest_ = checkpoint::RunManifest(manifest_path_);
    }
    // One-shot budget across all stages and attempts of this run: a
    // transient injected fault fires once even when the stage is retried.
    fault_ = options_.fault;
    if (fault_.enabled()) fault_.arm();
  }

  void stage(const std::string& name, const std::vector<std::string>& inputs,
             const std::vector<std::string>& outputs,
             const std::function<void()>& compute, const std::function<void()>& load) {
    // Cancellation point: every completed stage has already committed its
    // checkpoint, so stopping here loses no work — a resume run continues
    // from this exact boundary.
    if (options_.deadline && options_.deadline->load(std::memory_order_acquire)) {
      trace::instant("stage.deadline", trace::kCatPipeline, name);
      throw DeadlineExceededError(name);
    }
    if (options_.preempt && options_.preempt->load(std::memory_order_acquire)) {
      trace::instant("stage.preempt", trace::kCatPipeline, name);
      throw PreemptedError(name);
    }
    publish_heartbeat(name);
    if (can_resume(name)) {
      trace_.phase(name + ".resumed", load);
      result_.stages_resumed.push_back(name);
      sync_trace();
      return;
    }
    chain_valid_ = false;  // everything downstream recomputes too
    if (name == options_.hang_stage && options_.hang_seconds > 0.0) hang_in_stage(name);
    const Execution exec = execute_with_retry(name, compute);
    result_.stages_executed.push_back(name);
    if (options_.metrics != nullptr) {
      options_.metrics
          ->histogram("trinity_stage_duration_seconds",
                      "Wall seconds per executed pipeline stage",
                      obs::latency_buckets_s(), {{"stage", name}})
          .observe(exec.wall_seconds);
    }
    if (options_.checkpoint) record(name, inputs, outputs, exec);
    sync_trace();
  }

  /// Live stage-progress heartbeat (docs/OBSERVABILITY.md "Live metrics"):
  /// on entering each stage boundary the job publishes the registry's
  /// uptime clock under {tenant, job, stage}. A reader (trinity_top)
  /// derives the job's current stage as its most recent heartbeat and the
  /// heartbeat's age from the snapshot's own uptime — no wall-clock
  /// agreement needed.
  void publish_heartbeat(const std::string& name) {
    if (options_.metrics == nullptr || options_.job_id.empty()) return;
    options_.metrics
        ->gauge("trinity_job_stage_heartbeat",
                "Registry-uptime seconds at the job's last entry into a stage",
                {{"tenant", options_.tenant},
                 {"job", options_.job_id},
                 {"stage", name}})
        .set(options_.metrics->uptime_s());
  }

  /// Stage-end trace maintenance: synthesizes one pipeline-category span
  /// (plus rss counter samples) for every ResourceTrace phase closed since
  /// the last call, then drains the recorder's thread buffers — the
  /// "drained at stage end" contract that bounds buffer occupancy. The
  /// span is stamped from the PhaseRecord itself, so the analyzer's stage
  /// wall times equal the run report's exactly; the (sub-microsecond)
  /// epoch skew between the resource-trace clock and the recorder clock is
  /// bridged by recorder_epoch_offset_.
  void sync_trace() {
    if (recorder_ == nullptr) return;
    const auto& phases = trace_.records();
    for (; synced_phases_ < phases.size(); ++synced_phases_) {
      const util::PhaseRecord& pr = phases[synced_phases_];
      trace::TraceEvent span;
      span.kind = trace::EventKind::kSpan;
      span.name = pr.name;
      span.category = trace::kCatPipeline;
      span.start_s = pr.start_seconds + recorder_epoch_offset_;
      span.dur_s = pr.wall_seconds;
      span.args.push_back({"cpu_s", pr.cpu_seconds});
      span.args.push_back({"rss_peak_b", static_cast<double>(pr.rss_peak)});
      for (const auto& c : pr.counters) span.args.push_back({c.name, c.value});
      recorder_->record(std::move(span));

      for (const auto& [offset, rss] :
           {std::pair<double, std::uint64_t>{0.0, pr.rss_before},
            std::pair<double, std::uint64_t>{pr.wall_seconds, pr.rss_after}}) {
        trace::TraceEvent sample;
        sample.kind = trace::EventKind::kCounter;
        sample.name = "rss_bytes";
        sample.category = trace::kCatPipeline;
        sample.start_s = pr.start_seconds + recorder_epoch_offset_ + offset;
        sample.value = static_cast<double>(rss);
        recorder_->record(std::move(sample));
      }
    }
    auto drained = recorder_->drain();
    events_.insert(events_.end(), std::make_move_iterator(drained.begin()),
                   std::make_move_iterator(drained.end()));
  }

  /// Everything drained so far (moved out once, at trace-write time).
  [[nodiscard]] std::vector<trace::TraceEvent> take_trace_events() {
    return std::move(events_);
  }

  [[nodiscard]] simpi::FaultPlan fault_for(const std::string& name) const {
    return options_.fault_stage == name ? fault_ : simpi::FaultPlan{};
  }

 private:
  /// The injected wedge: sleep inside the stage (no manifest progress)
  /// while polling both cancellation tokens, so the watchdog's cancel is
  /// observed within one poll interval rather than at stage end.
  void hang_in_stage(const std::string& name) {
    trace::instant("stage.hang", trace::kCatPipeline,
                   name + ": injected hang " + std::to_string(options_.hang_seconds) + "s");
    util::Timer wall;
    while (wall.seconds() < options_.hang_seconds) {
      if (options_.deadline && options_.deadline->load(std::memory_order_acquire)) {
        trace::instant("stage.deadline", trace::kCatPipeline, name);
        throw DeadlineExceededError(name);
      }
      if (options_.preempt && options_.preempt->load(std::memory_order_acquire)) {
        trace::instant("stage.preempt", trace::kCatPipeline, name);
        throw PreemptedError(name);
      }
      checkpoint::sleep_seconds(0.01);
    }
  }

  bool can_resume(const std::string& name) {
    if (!options_.resume || !chain_valid_) return false;
    const checkpoint::StageRecord* record = manifest_.find(name);
    if (record == nullptr) return false;
    const auto check =
        checkpoint::validate_stage(*record, work_dir_, result_.options_fingerprint);
    if (check == checkpoint::StageCheck::kValid) return true;
    LOG_INFO() << "pipeline: stage " << name << " not resumable (" << to_string(check)
               << "); re-running from here";
    return false;
  }

  struct Execution {
    double wall_seconds = 0.0;
    int attempts = 1;  ///< 1 when the stage succeeded first try
  };

  Execution execute_with_retry(const std::string& name, const std::function<void()>& compute) {
    const checkpoint::RetryPolicy& policy = options_.retry;
    for (int attempt = 1;; ++attempt) {
      util::Timer wall;
      std::exception_ptr error;
      const std::string label = attempt == 1 ? name : name + ".retry" + std::to_string(attempt);
      // The phase must close even when the stage throws, so the aborted
      // attempt still shows up in the trace; the exception is re-examined
      // outside.
      trace_.phase(label, [&] {
        try {
          compute();
        } catch (...) {
          error = std::current_exception();
        }
      });
      if (!error) return {wall.seconds(), attempt};
      try {
        std::rethrow_exception(error);
      } catch (const simpi::RankFaultError& e) {
        handle_abort(name, e.what(), attempt, policy);
      } catch (const simpi::AbortedError& e) {
        handle_abort(name, e.what(), attempt, policy);
      } catch (const io::IoError& e) {
        // The typed-error contract: transient storage failures are retried
        // like an aborted world; permanent ones (ENOSPC, torn rename) fail
        // fast — the committed checkpoints are the recovery path.
        if (!e.transient()) throw;
        handle_abort(name, e.what(), attempt, policy);
        ++result_.io_retries;
      }
      // io::ParseError (malformed input) is deliberately not caught:
      // retrying cannot fix bytes that are wrong on disk.
      // Retrying: another writer may share the work dir (a re-launched
      // driver), so reread the manifest before the next attempt.
      manifest_ = checkpoint::RunManifest::load(manifest_path_);
      checkpoint::sleep_seconds(policy.backoff_for(attempt));
    }
  }

  /// Rethrows when the retry budget is exhausted; otherwise logs and counts.
  void handle_abort(const std::string& name, const char* what, int attempt,
                    const checkpoint::RetryPolicy& policy) {
    trace::instant("stage.abort", trace::kCatPipeline,
                   name + ": " + what, {{"attempt", static_cast<double>(attempt)}});
    if (attempt >= policy.max_attempts) throw;
    ++result_.stage_retries;
    LOG_WARN() << "pipeline: stage " << name << " aborted (" << what << "); retry "
               << attempt + 1 << "/" << policy.max_attempts;
  }

  void record(const std::string& name, const std::vector<std::string>& inputs,
              const std::vector<std::string>& outputs, const Execution& exec) {
    // Hashing the artifacts and committing the manifest is the checkpoint
    // overhead; it gets its own trace phase so Fig-2/11-style traces (and
    // bench_checkpoint_overhead) can show it per stage.
    trace_.phase(name + ".checkpoint", [&] {
      util::Timer timer;
      checkpoint::StageRecord record;
      record.stage = name;
      record.fingerprint = result_.options_fingerprint;
      record.complete = true;
      record.attempt = exec.attempts;
      record.wall_seconds = exec.wall_seconds;
      record.trace = trace_ref_;
      for (const auto& p : inputs) record.inputs.push_back(checkpoint::capture_artifact(work_dir_, p));
      for (const auto& p : outputs) {
        record.outputs.push_back(checkpoint::capture_artifact(work_dir_, p));
      }
      record.checkpoint_seconds = timer.seconds();
      manifest_.upsert(std::move(record));
      manifest_.commit();
    });
  }

  const PipelineOptions& options_;
  std::string work_dir_;
  std::string manifest_path_;
  util::ResourceTrace& trace_;
  PipelineResult& result_;
  checkpoint::RunManifest manifest_;
  simpi::FaultPlan fault_;
  std::string trace_ref_;  ///< run-report path stamped into stage records
  bool chain_valid_ = true;  ///< false after the first recomputed stage

  trace::SpanRecorder* recorder_;       ///< null when tracing is off
  double recorder_epoch_offset_;        ///< recorder time at ResourceTrace start
  std::size_t synced_phases_ = 0;       ///< phases already synthesized
  std::vector<trace::TraceEvent> events_;  ///< drained so far, in drain order
};

/// Shared body of run_pipeline / run_pipeline_from_file. `input_parse`
/// carries the quarantine counts of the input-file read when the caller
/// streamed the reads off disk (null when they arrived in memory).
PipelineResult run_pipeline_impl(const std::vector<seq::Sequence>& reads,
                                 const PipelineOptions& options,
                                 const io::ParseDiagnostics* input_parse) {
  if (options.nranks < 1) throw std::invalid_argument("run_pipeline: nranks must be >= 1");
  if (options.retry.max_attempts < 1) {
    throw std::invalid_argument("run_pipeline: retry.max_attempts must be >= 1");
  }
  // Install the storage fault plan for the whole run; armed once so a
  // retried stage does not re-trip a consumed transient fault.
  io::ScopedFaultInjection io_fault_guard(options.io_fault);
  PipelineResult result;
  if (input_parse != nullptr) result.parse = *input_parse;
  const std::string work_dir = ensure_work_dir(options);
  const std::string reads_path = work_dir + "/" + kReadsFile;
  result.options_fingerprint = options_fingerprint(options, reads);

  // Resolve the run-report destination up front: stage manifest records
  // point at it (the "trace" field) as they are committed.
  const std::string report_path =
      !options.emit_report
          ? ""
          : (options.report_path.empty() ? work_dir + "/" + kReportFileName
                                         : options.report_path);
  const std::string report_ref =
      !options.emit_report
          ? ""
          : (options.report_path.empty() ? std::string(kReportFileName) : options.report_path);

  // Span tracing: off unless trace_path is set. The recorder is installed
  // process-wide for the run; everything instrumented (simpi collectives,
  // loop chunks, io calls) records into it, and the driver drains it at
  // every stage boundary.
  const std::string trace_path =
      options.trace_path.empty()
          ? ""
          : (options.trace_path.front() == '/' ? options.trace_path
                                               : work_dir + "/" + options.trace_path);
  std::unique_ptr<trace::SpanRecorder> recorder;
  std::optional<trace::ScopedRecording> recording;
  if (!trace_path.empty()) {
    recorder = std::make_unique<trace::SpanRecorder>();
    recording.emplace(recorder.get());
  }

  util::ResourceTrace trace(options.trace_sample_interval_ms);
  // Pipeline stage spans are stamped on the ResourceTrace clock; measure
  // its epoch on the recorder clock so the two align on one timeline.
  const double recorder_epoch_offset = recorder ? recorder->now() : 0.0;
  StageDriver driver(options, work_dir, trace, result, report_ref, recorder.get(),
                     recorder_epoch_offset);

  // Stage files: Trinity modules exchange data through the filesystem —
  // which is exactly what makes them checkpoints.
  driver.stage(
      "write_input", {}, {kReadsFile},
      [&] { seq::write_fasta(reads_path, reads); },  //
      [&] {});  // reads are already in memory; the file validated on disk

  // --- Jellyfish: k-mer counting --------------------------------------------
  kmer::CounterOptions counter_options;
  counter_options.k = options.k;
  counter_options.canonical = true;
  counter_options.num_threads = options.omp_threads;
  kmer::KmerCounter counter(counter_options);
  std::vector<kmer::KmerCount> counts;
  driver.stage(
      "jellyfish", {kReadsFile}, {kKmersFile},
      [&] {
        // Rebuild the counter on entry: the retry driver may run this body
        // again (e.g. after a transient I/O failure on the dump), and
        // re-adding the reads to a populated counter would double every
        // count.
        counter = kmer::KmerCounter(counter_options);
        counter.add_sequences(reads);
        counts = counter.dump();
        kmer::write_dump_binary(work_dir + "/" + kKmersFile, counts, options.k);
      },
      [&] {
        counts = kmer::read_dump_binary(work_dir + "/" + kKmersFile, options.k);
        counter.add_counts(counts);
      });

  // --- Inchworm: greedy contigs ---------------------------------------------
  driver.stage(
      "inchworm", {kKmersFile}, {kContigsFile},
      [&] {
        inchworm::InchwormOptions iw;
        iw.k = options.k;
        iw.min_kmer_count = options.min_kmer_count;
        // Keep isoform-junction fragments: a branch leftover is ~2k-2 bases,
        // and Chrysalis needs it to weld the isoforms into one component.
        iw.min_contig_length = static_cast<std::size_t>(options.k);
        iw.tie_break_seed = options.run_seed;
        inchworm::Inchworm assembler(iw);
        assembler.load_counts(counts);
        result.contigs = assembler.assemble();
        seq::write_fasta(work_dir + "/" + kContigsFile, result.contigs);
      },
      [&] { result.contigs = seq::read_all(work_dir + "/" + kContigsFile); });

  // --- Chrysalis ---------------------------------------------------------------
  align::AlignerOptions aligner_options;
  aligner_options.num_threads = options.omp_threads;
  aligner_options.kernel_repeats = options.bowtie_kernel_repeats;
  aligner_options.model_threads_per_rank = options.model_threads_per_rank;

  std::vector<align::SamRecord> sam;
  driver.stage(
      "chrysalis.bowtie", {kContigsFile, kReadsFile}, {kSamFile},
      [&] {
        if (options.nranks == 1) {
          util::ThreadCpuTimer cpu;
          const align::ContigIndex index(result.contigs, aligner_options);
          const align::SeedExtendAligner aligner(index);
          sam = aligner.align_all(reads);
          // One node with model_threads_per_rank threads: the aligner loop is
          // embarrassingly parallel, so model the division directly.
          result.bowtie_shared_seconds =
              cpu.seconds() / static_cast<double>(std::max(options.model_threads_per_rank, 1));
          align::write_sam(work_dir + "/" + kSamFile, sam, result.contigs);
        } else {
          auto rank_results = simpi::run(
              options.nranks,
              [&](simpi::Context& ctx) {
                auto dist = align::distributed_bowtie(ctx, result.contigs, reads,
                                                      aligner_options, options.bowtie_split);
                if (ctx.rank() == 0) {
                  sam = std::move(dist.records);
                  result.bowtie_timing = dist.timing;
                  align::write_sam(work_dir + "/" + kSamFile, sam, result.contigs);
                }
              },
              options.comm, driver.fault_for("chrysalis.bowtie"));
          record_stage_comm(options, result, trace, "chrysalis.bowtie", std::move(rank_results));
        }
      },
      [&] {
        // write_sam's @SQ header lists the contigs in index order, so the
        // parsed target ids already match; the name map guards against a
        // hand-edited file that still hashes clean (impossible) or future
        // format drift.
        auto sam_file = align::read_sam(work_dir + "/" + kSamFile);
        std::unordered_map<std::string, std::int32_t> id_of;
        for (std::size_t i = 0; i < result.contigs.size(); ++i) {
          id_of.emplace(result.contigs[i].name, static_cast<std::int32_t>(i));
        }
        for (auto& r : sam_file.records) {
          if (!r.aligned()) continue;
          const auto it = id_of.find(r.target_name);
          if (it == id_of.end()) {
            throw std::runtime_error("resume: bowtie.sam references unknown contig " +
                                     r.target_name);
          }
          r.target_id = it->second;
        }
        sam = std::move(sam_file.records);
      });

  std::vector<chrysalis::ContigPair> scaffold;
  if (options.bowtie_scaffolding) {
    scaffold = chrysalis::scaffold_pairs(sam, result.contigs, chrysalis::ScaffoldOptions{});
  }

  chrysalis::GraphFromFastaOptions gff;
  gff.k = options.k;
  gff.min_weld_support = options.min_weld_support;
  gff.omp_threads = options.omp_threads;
  gff.model_threads_per_rank = options.model_threads_per_rank;
  gff.kernel_repeats = options.gff_kernel_repeats;
  gff.distribution = options.gff_distribution;
  gff.hybrid_setup = options.gff_hybrid_setup;
  gff.sharding = options.gff_sharding;
  // Legacy knob: --no-overlap blocks the Chrysalis overlap paths, which for
  // GFF means degrading the default overlapped pool to the blocking one.
  // Explicit pooled/owner selections are already non-overlapped or manage
  // their own overlap, so they pass through.
  if (gff.sharding == chrysalis::ShardingStrategy::kPooledOverlap && !options.overlap) {
    gff.sharding = chrysalis::ShardingStrategy::kPooled;
  }

  driver.stage(
      "chrysalis.graph_from_fasta", {kContigsFile, kKmersFile, kSamFile}, {kComponentsFile},
      [&] {
        if (options.nranks == 1) {
          auto r = chrysalis::run_shared(result.contigs, counter, gff, scaffold);
          result.components = std::move(r.components);
          result.gff_timing = r.timing;
        } else {
          auto rank_results = simpi::run(
              options.nranks,
              [&](simpi::Context& ctx) {
                auto r = chrysalis::run_hybrid(ctx, result.contigs, counter, gff, scaffold);
                if (ctx.rank() == 0) {
                  result.components = std::move(r.components);
                  result.gff_timing = r.timing;
                }
              },
              options.comm, driver.fault_for("chrysalis.graph_from_fasta"));
          record_stage_comm(options, result, trace, "chrysalis.graph_from_fasta",
                            std::move(rank_results));
        }
        chrysalis::write_components(work_dir + "/" + kComponentsFile, result.components);
      },
      [&] {
        result.components = chrysalis::read_components(work_dir + "/" + kComponentsFile);
      });

  chrysalis::ReadsToTranscriptsOptions r2t;
  r2t.k = options.k;
  r2t.max_mem_reads = options.max_mem_reads;
  r2t.omp_threads = options.omp_threads;
  r2t.model_threads_per_rank = options.model_threads_per_rank;
  r2t.kernel_repeats = options.r2t_kernel_repeats;
  r2t.strategy = options.r2t_strategy;
  r2t.output_mode = options.r2t_output_mode;
  r2t.parse_policy = options.parse_policy;
  r2t.overlap_io = options.overlap;
  r2t.mode = options.r2t_mode;
  r2t.index_lifecycle = options.r2t_index;
  if (options.r2t_mode == chrysalis::R2TMode::kIndex) {
    r2t.index_path = work_dir + "/" + kIndexFile;
    // The fingerprint covers the reads and every output-affecting option,
    // so equal fingerprints imply equal components — exactly the safety
    // condition for reusing a cached index across serve jobs.
    if (options.index_cache != nullptr) {
      r2t.shared_index = options.index_cache->find(result.options_fingerprint);
    }
  }

  // Assigned (not merged) in the stage body: idempotent across retries.
  io::ParseDiagnostics r2t_parse;
  driver.stage(
      "chrysalis.reads_to_transcripts", {kContigsFile, kComponentsFile, kReadsFile},
      {kAssignmentsFile},
      [&] {
        if (options.nranks == 1) {
          auto r = chrysalis::run_shared(result.contigs, result.components, reads_path, r2t,
                                         work_dir);
          result.assignments = std::move(r.assignments);
          result.r2t_timing = r.timing;
          r2t_parse = r.parse;
          if (options.index_cache != nullptr && r.index != nullptr) {
            options.index_cache->put(result.options_fingerprint, r.index);
          }
        } else {
          auto rank_results = simpi::run(
              options.nranks,
              [&](simpi::Context& ctx) {
                auto r = chrysalis::run_hybrid(ctx, result.contigs, result.components,
                                               reads_path, r2t, work_dir);
                if (ctx.rank() == 0) {
                  result.assignments = std::move(r.assignments);
                  result.r2t_timing = r.timing;
                  r2t_parse = r.parse;
                  if (options.index_cache != nullptr && r.index != nullptr) {
                    options.index_cache->put(result.options_fingerprint, r.index);
                  }
                }
              },
              options.comm, driver.fault_for("chrysalis.reads_to_transcripts"));
          record_stage_comm(options, result, trace, "chrysalis.reads_to_transcripts",
                            std::move(rank_results));
        }
        trace.counter("parse_quarantined", static_cast<double>(r2t_parse.records_quarantined()));
        trace.counter("parse_repaired", static_cast<double>(r2t_parse.records_repaired));
      },
      [&] {
        result.assignments =
            chrysalis::read_assignments(work_dir + "/" + kAssignmentsFile);
      });

  // --- Butterfly (includes FastaToDebruijn + QuantifyGraph per component) ---
  driver.stage(
      "butterfly", {kContigsFile, kComponentsFile, kAssignmentsFile, kReadsFile},
      {kTranscriptsFile},
      [&] {
        butterfly::ButterflyOptions bf;
        bf.k = options.k;
        bf.tie_break_seed = options.run_seed;
        bf.min_node_support = options.butterfly_min_node_support;
        bf.require_paired_support = options.butterfly_require_paired_support;
        result.transcripts = butterfly::run_butterfly(result.contigs, result.components,
                                                      result.assignments, reads, bf);
        seq::write_fasta(work_dir + "/" + kTranscriptsFile, result.transcripts);
      },
      [&] { result.transcripts = seq::read_all(work_dir + "/" + kTranscriptsFile); });

  result.parse.merge(r2t_parse);
  result.trace = trace.records();
  if (recorder) {
    driver.sync_trace();  // catch events recorded after the last stage
    recording.reset();    // uninstall before writing the file
    trace::ChromeTraceMeta meta;
    meta.dropped_events = recorder->dropped_events();
    // Through the io layer: the trace write obeys the same fault-injection
    // and typed-error contract as every other durable artifact.
    io::write_file(trace_path,
                   trace::chrome_trace_text(driver.take_trace_events(), meta));
    result.trace_file = trace_path;
  }
  if (options.emit_report) {
    result.report_path = report_path;
    write_run_report(report_path, build_run_report(options, result));
  }
  return result;
}

}  // namespace

PipelineResult run_pipeline(const std::vector<seq::Sequence>& reads,
                            const PipelineOptions& options) {
  return run_pipeline_impl(reads, options, nullptr);
}

PipelineResult run_pipeline_from_file(const std::string& reads_path,
                                      const PipelineOptions& options) {
  io::ParseDiagnostics input_parse;
  const auto reads = seq::read_all(reads_path, options.parse_policy, &input_parse);
  return run_pipeline_impl(reads, options, &input_parse);
}

}  // namespace trinity::pipeline
