#include "pipeline/trinity_pipeline.hpp"

#include <filesystem>
#include <stdexcept>

#include "chrysalis/scaffold.hpp"
#include "inchworm/inchworm.hpp"
#include "kmer/counter.hpp"
#include "seq/fasta.hpp"
#include "util/timer.hpp"

namespace trinity::pipeline {

double PipelineResult::chrysalis_virtual_seconds() const {
  const double bowtie =
      bowtie_shared_seconds > 0.0 ? bowtie_shared_seconds : bowtie_timing.total_seconds();
  return bowtie + gff_timing.total_seconds() + r2t_timing.total_seconds();
}

namespace {

std::string ensure_work_dir(const PipelineOptions& options) {
  std::string dir = options.work_dir;
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "trinity_work").string();
  }
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

PipelineResult run_pipeline(const std::vector<seq::Sequence>& reads,
                            const PipelineOptions& options) {
  if (options.nranks < 1) throw std::invalid_argument("run_pipeline: nranks must be >= 1");
  PipelineResult result;
  const std::string work_dir = ensure_work_dir(options);
  const std::string reads_path = work_dir + "/reads.fa";

  util::ResourceTrace trace(options.trace_sample_interval_ms);

  // Stage files: Trinity modules exchange data through the filesystem.
  trace.phase("write_input", [&] { seq::write_fasta(reads_path, reads); });

  // --- Jellyfish: k-mer counting --------------------------------------------
  kmer::CounterOptions counter_options;
  counter_options.k = options.k;
  counter_options.canonical = true;
  counter_options.num_threads = options.omp_threads;
  kmer::KmerCounter counter(counter_options);
  std::vector<kmer::KmerCount> counts;
  trace.phase("jellyfish", [&] {
    counter.add_sequences(reads);
    counts = counter.dump();
    kmer::write_dump_binary(work_dir + "/kmers.bin", counts, options.k);
  });

  // --- Inchworm: greedy contigs ---------------------------------------------
  trace.phase("inchworm", [&] {
    inchworm::InchwormOptions iw;
    iw.k = options.k;
    iw.min_kmer_count = options.min_kmer_count;
    // Keep isoform-junction fragments: a branch leftover is ~2k-2 bases,
    // and Chrysalis needs it to weld the isoforms into one component.
    iw.min_contig_length = static_cast<std::size_t>(options.k);
    iw.tie_break_seed = options.run_seed;
    inchworm::Inchworm assembler(iw);
    assembler.load_counts(counts);
    result.contigs = assembler.assemble();
    seq::write_fasta(work_dir + "/inchworm.fa", result.contigs);
  });

  // --- Chrysalis ---------------------------------------------------------------
  align::AlignerOptions aligner_options;
  aligner_options.num_threads = options.omp_threads;
  aligner_options.kernel_repeats = options.bowtie_kernel_repeats;
  aligner_options.model_threads_per_rank = options.model_threads_per_rank;

  std::vector<align::SamRecord> sam;
  trace.phase("chrysalis.bowtie", [&] {
    if (options.nranks == 1) {
      util::ThreadCpuTimer cpu;
      const align::ContigIndex index(result.contigs, aligner_options);
      const align::SeedExtendAligner aligner(index);
      sam = aligner.align_all(reads);
      // One node with model_threads_per_rank threads: the aligner loop is
      // embarrassingly parallel, so model the division directly.
      result.bowtie_shared_seconds =
          cpu.seconds() / static_cast<double>(std::max(options.model_threads_per_rank, 1));
      align::write_sam(work_dir + "/bowtie.sam", sam, result.contigs);
    } else {
      simpi::run(
          options.nranks,
          [&](simpi::Context& ctx) {
            auto dist = align::distributed_bowtie(ctx, result.contigs, reads, aligner_options,
                                                  options.bowtie_split);
            if (ctx.rank() == 0) {
              sam = std::move(dist.records);
              result.bowtie_timing = dist.timing;
              align::write_sam(work_dir + "/bowtie.sam", sam, result.contigs);
            }
          },
          options.comm);
    }
  });

  std::vector<chrysalis::ContigPair> scaffold;
  if (options.bowtie_scaffolding) {
    scaffold = chrysalis::scaffold_pairs(sam, result.contigs, chrysalis::ScaffoldOptions{});
  }

  chrysalis::GraphFromFastaOptions gff;
  gff.k = options.k;
  gff.min_weld_support = options.min_weld_support;
  gff.omp_threads = options.omp_threads;
  gff.model_threads_per_rank = options.model_threads_per_rank;
  gff.kernel_repeats = options.gff_kernel_repeats;
  gff.distribution = options.gff_distribution;
  gff.hybrid_setup = options.gff_hybrid_setup;

  trace.phase("chrysalis.graph_from_fasta", [&] {
    if (options.nranks == 1) {
      auto r = chrysalis::run_shared(result.contigs, counter, gff, scaffold);
      result.components = std::move(r.components);
      result.gff_timing = r.timing;
    } else {
      simpi::run(
          options.nranks,
          [&](simpi::Context& ctx) {
            auto r = chrysalis::run_hybrid(ctx, result.contigs, counter, gff, scaffold);
            if (ctx.rank() == 0) {
              result.components = std::move(r.components);
              result.gff_timing = r.timing;
            }
          },
          options.comm);
    }
  });

  chrysalis::ReadsToTranscriptsOptions r2t;
  r2t.k = options.k;
  r2t.max_mem_reads = options.max_mem_reads;
  r2t.omp_threads = options.omp_threads;
  r2t.model_threads_per_rank = options.model_threads_per_rank;
  r2t.kernel_repeats = options.r2t_kernel_repeats;
  r2t.strategy = options.r2t_strategy;
  r2t.output_mode = options.r2t_output_mode;

  trace.phase("chrysalis.reads_to_transcripts", [&] {
    if (options.nranks == 1) {
      auto r = chrysalis::run_shared(result.contigs, result.components, reads_path, r2t,
                                     work_dir);
      result.assignments = std::move(r.assignments);
      result.r2t_timing = r.timing;
    } else {
      simpi::run(
          options.nranks,
          [&](simpi::Context& ctx) {
            auto r = chrysalis::run_hybrid(ctx, result.contigs, result.components, reads_path,
                                           r2t, work_dir);
            if (ctx.rank() == 0) {
              result.assignments = std::move(r.assignments);
              result.r2t_timing = r.timing;
            }
          },
          options.comm);
    }
  });

  // --- Butterfly (includes FastaToDebruijn + QuantifyGraph per component) ---
  trace.phase("butterfly", [&] {
    butterfly::ButterflyOptions bf;
    bf.k = options.k;
    bf.tie_break_seed = options.run_seed;
    bf.min_node_support = options.butterfly_min_node_support;
    bf.require_paired_support = options.butterfly_require_paired_support;
    result.transcripts = butterfly::run_butterfly(result.contigs, result.components,
                                                  result.assignments, reads, bf);
    seq::write_fasta(work_dir + "/Trinity.fa", result.transcripts);
  });

  result.trace = trace.records();
  return result;
}

PipelineResult run_pipeline_from_file(const std::string& reads_path,
                                      const PipelineOptions& options) {
  return run_pipeline(seq::read_all(reads_path), options);
}

}  // namespace trinity::pipeline
