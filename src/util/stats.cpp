#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace trinity::util {

SampleStats summarize(const std::vector<double>& xs) {
  SampleStats s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.mean = std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  if (xs.size() >= 2) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.variance = ss / static_cast<double>(xs.size() - 1);
  }
  return s;
}

namespace {

// Regularized incomplete beta function via continued fraction (Lentz), used
// to get the Student-t CDF without linking a stats library.
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double ibeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front = std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

// Two-sided p-value of |t| with `dof` degrees of freedom.
double t_p_two_sided(double t, double dof) {
  const double x = dof / (dof + t * t);
  return ibeta(dof / 2.0, 0.5, x);
}

}  // namespace

TTestResult welch_t_test(const std::vector<double>& a, const std::vector<double>& b) {
  TTestResult r;
  if (a.size() < 2 || b.size() < 2) return r;
  const SampleStats sa = summarize(a);
  const SampleStats sb = summarize(b);
  const double va_n = sa.variance / static_cast<double>(sa.n);
  const double vb_n = sb.variance / static_cast<double>(sb.n);
  const double denom = std::sqrt(va_n + vb_n);
  if (denom == 0.0) {
    // Identical constant samples: no evidence of difference.
    r.t = 0.0;
    r.dof = static_cast<double>(sa.n + sb.n - 2);
    r.p_two_sided = 1.0;
    return r;
  }
  r.t = (sa.mean - sb.mean) / denom;
  const double num = (va_n + vb_n) * (va_n + vb_n);
  const double den = va_n * va_n / static_cast<double>(sa.n - 1) +
                     vb_n * vb_n / static_cast<double>(sb.n - 1);
  r.dof = num / den;
  r.p_two_sided = t_p_two_sided(r.t, r.dof);
  r.significant_at_5pct = r.p_two_sided < 0.05;
  return r;
}

double percentile(const std::vector<double>& xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[lo + 1] - xs[lo]) * frac;
}

std::size_t n50(std::vector<std::size_t> lengths) {
  if (lengths.empty()) return 0;
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  std::size_t total = 0;
  for (auto len : lengths) total += len;
  std::size_t cum = 0;
  for (auto len : lengths) {
    cum += len;
    if (2 * cum >= total) return len;
  }
  return lengths.back();
}

}  // namespace trinity::util
