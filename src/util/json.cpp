#include "util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace trinity::util {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error("json: " + what); }

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) fail("cannot serialize a non-finite number");
  char buf[32];
  // %.17g round-trips any double; trim to the shortest form that re-parses
  // to the same value so reports stay human-readable.
  for (int prec = 6; prec <= 17; prec += prec < 15 ? 3 : 2) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

// --- parser ------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) error("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void error(const std::string& what) const {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) error(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        error("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        error("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        error("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') error("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') error("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) error("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else error("invalid hex digit in \\u escape");
          }
          // Encode the code point as UTF-8. Surrogate pairs are not
          // recombined; the writers here only escape control characters.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: error("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) error("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != 0 || end != token.c_str() + token.size()) {
        error("integer out of range or malformed");
      }
      return Json(static_cast<std::int64_t>(v));
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) error("malformed number");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

// --- Json --------------------------------------------------------------------

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) fail("value is not a bool");
  return bool_;
}

double Json::as_double() const {
  if (kind_ != Kind::kNumber) fail("value is not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  if (kind_ != Kind::kNumber || !integral_) fail("value is not an integer");
  return int_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) fail("value is not a string");
  return str_;
}

const Json::Array& Json::items() const {
  if (kind_ != Kind::kArray) fail("value is not an array");
  return array_;
}

const Json::Object& Json::members() const {
  if (kind_ != Kind::kObject) fail("value is not an object");
  return object_;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) fail("push_back on a non-array value");
  array_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) fail("set on a non-object value");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (!found) fail("missing key \"" + key + "\"");
  return *found;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int level) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber:
      if (integral_) {
        out += std::to_string(int_);
      } else {
        append_number(out, num_);
      }
      break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace trinity::util
