#pragma once
// Wall-clock and per-thread CPU-time timers.
//
// The per-thread CPU clock (CLOCK_THREAD_CPUTIME_ID) is what makes the
// cluster simulation honest on a small host: each simpi rank runs as a
// thread, and its *compute* cost is charged from its own CPU clock, so
// oversubscribing ranks onto few cores does not distort per-rank work
// measurements the way wall time would.

#include <chrono>
#include <cstdint>
#include <ctime>

namespace trinity::util {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU time consumed by the *calling thread*, in seconds.
double thread_cpu_seconds();

/// CPU time consumed by the whole process, in seconds.
double process_cpu_seconds();

/// Stopwatch over the calling thread's CPU clock. Must be read from the
/// same thread that constructed it.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(thread_cpu_seconds()) {}
  void reset() { start_ = thread_cpu_seconds(); }
  [[nodiscard]] double seconds() const { return thread_cpu_seconds() - start_; }

 private:
  double start_;
};

}  // namespace trinity::util
