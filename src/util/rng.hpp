#pragma once
// Deterministic, fast random number generation (xoshiro256**).
//
// Everything stochastic in the library — transcriptome simulation, read
// sampling, error injection, the intentionally nondeterministic tie-breaks
// that model Trinity's "slightly indeterministic output" — draws from this
// generator so that runs are exactly reproducible from a seed.

#include <cstdint>

namespace trinity::util {

/// xoshiro256** 1.0 by Blackman & Vigna; public-domain reference algorithm.
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions, but the convenience members below avoid libstdc++
/// distribution portability issues for common cases.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// `bound` must be nonzero.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal via Box–Muller.
  double normal();

  /// Log-normal draw: exp(mu + sigma * N(0,1)). Used for the paper's
  /// "very large dynamic range" of expression levels.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Creates an independent child generator (stream split).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace trinity::util
