#pragma once
// Minimal command-line option parser for the example programs and bench
// harnesses. Options are "--name value" or "--name=value"; bare "--flag"
// sets a boolean. Positional arguments are collected in order.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace trinity::util {

/// Parsed command line: named options plus positional arguments.
class CliArgs {
 public:
  /// Parses argv (excluding argv[0]). Throws std::invalid_argument on a
  /// malformed option such as "--" with no name.
  static CliArgs parse(int argc, const char* const* argv);

  /// True when --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Raw string value of --name, or std::nullopt when absent.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// String value with a default.
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& dflt) const;

  /// Integer value with a default. Throws std::invalid_argument when the
  /// supplied value does not parse as an integer.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t dflt) const;

  /// Floating-point value with a default.
  [[nodiscard]] double get_double(const std::string& name, double dflt) const;

  /// Boolean flag: present without value -> true; "true"/"1" -> true.
  [[nodiscard]] bool get_bool(const std::string& name, bool dflt) const;

  /// Positional (non-option) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace trinity::util
