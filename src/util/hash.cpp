#include "util/hash.hpp"

#include <fstream>
#include <stdexcept>

namespace trinity::util {

std::uint64_t fnv1a_append(std::uint64_t state, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state ^= static_cast<std::uint64_t>(bytes[i]);
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t fnv1a_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fnv1a_file: cannot open " + path);
  std::uint64_t state = kFnvOffsetBasis;
  char buf[1 << 16];
  while (in) {
    in.read(buf, sizeof(buf));
    state = fnv1a_append(state, buf, static_cast<std::size_t>(in.gcount()));
  }
  return state;
}

}  // namespace trinity::util
