#include "util/rng.hpp"

#include <cmath>

namespace trinity::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& lane : s_) lane = splitmix64(x);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(mu + sigma * normal()); }

bool Rng::bernoulli(double p) { return uniform01() < p; }

Rng Rng::split() { return Rng((*this)() ^ 0xdeadbeefcafef00dULL); }

}  // namespace trinity::util
