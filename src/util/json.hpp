#pragma once
// A minimal JSON document tree with a parser and a serializer.
//
// The observability layer writes a versioned machine-readable run report
// (docs/OBSERVABILITY.md) and the trinity_report summarizer plus the tests
// read it back; both sides need real JSON, not the manifest's line-oriented
// subset. This is the smallest dependency-free implementation that closes
// that loop: a value tree (null/bool/number/string/array/object), a strict
// recursive-descent parser, and a deterministic serializer (object members
// keep insertion order, so dump(parse(dump(x))) == dump(x)).
//
// Numbers remember whether they were integral: counters (calls, bytes) are
// 64-bit and must round-trip exactly, while timings are doubles. Integers
// outside int64 range are rejected by the parser; the writers here never
// produce them.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace trinity::util {

/// One JSON value. Cheap to move; copies deep-copy the subtree.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Object members in insertion order (deterministic serialization).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  ///< null
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(std::int64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)), int_(v), integral_(true) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}
  Json(const char* v) : Json(std::string(v)) {}

  /// Empty array / object values to build documents incrementally.
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  // Typed accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Exact integer value; throws when the number was not integral.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& members() const;

  /// Appends to an array value (converts a null value to an array first).
  void push_back(Json value);

  /// Sets `key` in an object value, replacing an existing member
  /// (converts a null value to an object first).
  void set(std::string key, Json value);

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Member lookup; throws std::runtime_error when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;

  /// Serializes the value. indent < 0 emits the compact single-line form;
  /// indent >= 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document (trailing non-whitespace is
  /// an error). Throws std::runtime_error with an offset on malformed text.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool integral_ = false;
  std::string str_;
  Array array_;
  Object object_;
};

}  // namespace trinity::util
