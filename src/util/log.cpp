#include "util/log.hpp"

namespace trinity::util {

LogLevel& log_level() {
  static LogLevel level = LogLevel::Info;
  return level;
}

namespace detail {

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Debug: return "DEBUG";
  }
  return "?????";
}
}  // namespace

void log_emit(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  std::scoped_lock lock(mu);
  std::cerr << "[" << level_tag(level) << "] " << msg << '\n';
}

}  // namespace detail
}  // namespace trinity::util
