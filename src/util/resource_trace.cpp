#include "util/resource_trace.hpp"

#include <algorithm>
#include <iomanip>
#include <stdexcept>

#include "util/rss.hpp"

namespace trinity::util {

const PhaseCounter* PhaseRecord::counter(const std::string& counter_name) const {
  for (const auto& c : counters) {
    if (c.name == counter_name) return &c;
  }
  return nullptr;
}

ResourceTrace::ResourceTrace(int sample_interval_ms) {
  if (sample_interval_ms > 0) {
    sampler_ = std::thread([this, sample_interval_ms] { sampler_loop(sample_interval_ms); });
  }
}

ResourceTrace::~ResourceTrace() {
  stop_.store(true, std::memory_order_relaxed);
  if (sampler_.joinable()) sampler_.join();
}

void ResourceTrace::sampler_loop(int interval_ms) {
  while (!stop_.load(std::memory_order_relaxed)) {
    if (sampling_active_.load(std::memory_order_relaxed)) {
      const std::uint64_t rss = current_rss_bytes();
      std::uint64_t prev = sampled_peak_.load(std::memory_order_relaxed);
      while (rss > prev &&
             !sampled_peak_.compare_exchange_weak(prev, rss, std::memory_order_relaxed)) {
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

void ResourceTrace::begin_phase(const std::string& name) {
  if (phase_open_) throw std::logic_error("ResourceTrace: phases may not nest");
  phase_open_ = true;
  open_record_ = PhaseRecord{};
  open_record_.name = name;
  open_record_.start_seconds = trace_clock_.seconds();
  open_record_.rss_before = current_rss_bytes();
  open_cpu_start_ = process_cpu_seconds();
  sampled_peak_.store(open_record_.rss_before, std::memory_order_relaxed);
  sampling_active_.store(true, std::memory_order_relaxed);
  open_wall_.reset();
}

void ResourceTrace::end_phase() {
  if (!phase_open_) throw std::logic_error("ResourceTrace: no open phase");
  sampling_active_.store(false, std::memory_order_relaxed);
  open_record_.wall_seconds = open_wall_.seconds();
  open_record_.cpu_seconds = process_cpu_seconds() - open_cpu_start_;
  open_record_.rss_after = current_rss_bytes();
  open_record_.rss_peak = std::max({sampled_peak_.load(std::memory_order_relaxed),
                                    open_record_.rss_before, open_record_.rss_after});
  records_.push_back(open_record_);
  phase_open_ = false;
}

void ResourceTrace::counter(const std::string& name, double value) {
  if (!phase_open_) throw std::logic_error("ResourceTrace: counter() needs an open phase");
  for (auto& c : open_record_.counters) {
    if (c.name == name) {
      c.value = value;
      return;
    }
  }
  open_record_.counters.push_back(PhaseCounter{name, value});
}

double ResourceTrace::total_wall_seconds() const {
  double total = 0.0;
  for (const auto& r : records_) total += r.wall_seconds;
  return total;
}

void ResourceTrace::print_table(std::ostream& out) const {
  out << std::left << std::setw(28) << "phase" << std::right << std::setw(12) << "wall(s)"
      << std::setw(12) << "cpu(s)" << std::setw(14) << "rss_peak(MB)" << '\n';
  for (const auto& r : records_) {
    out << std::left << std::setw(28) << r.name << std::right << std::fixed
        << std::setprecision(3) << std::setw(12) << r.wall_seconds << std::setw(12)
        << r.cpu_seconds << std::setprecision(1) << std::setw(14)
        << static_cast<double>(r.rss_peak) / (1024.0 * 1024.0) << '\n';
  }
}

void ResourceTrace::write_csv(std::ostream& out) const {
  // Counters vary per phase, so they share one free-form column:
  // semicolon-joined name=value pairs (docs/OBSERVABILITY.md, "Trace CSV").
  out << "phase,start_s,wall_s,cpu_s,rss_before_b,rss_after_b,rss_peak_b,counters\n";
  for (const auto& r : records_) {
    out << r.name << ',' << r.start_seconds << ',' << r.wall_seconds << ',' << r.cpu_seconds
        << ',' << r.rss_before << ',' << r.rss_after << ',' << r.rss_peak << ',';
    for (std::size_t i = 0; i < r.counters.size(); ++i) {
      if (i > 0) out << ';';
      out << r.counters[i].name << '=' << r.counters[i].value;
    }
    out << '\n';
  }
}

}  // namespace trinity::util
