#pragma once
// Resident-set-size probes, the Collectl substitute's memory source.

#include <cstdint>

namespace trinity::util {

/// Current resident set size of this process in bytes, read from
/// /proc/self/statm. Returns 0 if the proc file is unavailable.
std::uint64_t current_rss_bytes();

/// Peak resident set size in bytes, read from /proc/self/status (VmHWM).
/// Returns 0 if unavailable.
std::uint64_t peak_rss_bytes();

}  // namespace trinity::util
