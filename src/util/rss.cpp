#include "util/rss.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>

namespace trinity::util {

std::uint64_t current_rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  std::uint64_t size_pages = 0;
  std::uint64_t rss_pages = 0;
  statm >> size_pages >> rss_pages;
  if (!statm) return 0;
  return rss_pages * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  if (status) {
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("VmHWM:", 0) == 0) {
        std::istringstream in(line.substr(6));
        std::uint64_t kib = 0;
        in >> kib;
        return kib * 1024;
      }
    }
  }
  // Some kernels/sandboxes omit VmHWM; getrusage reports peak RSS in KiB.
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
  }
  return 0;
}

}  // namespace trinity::util
