#pragma once
// Small statistics helpers used by the validation harness (Section IV of
// the paper runs a two-sample t-test over repeated-run metrics) and by the
// bench reporters (min/max/mean over per-rank times).

#include <cstddef>
#include <vector>

namespace trinity::util {

/// Summary of a sample: count, mean, variance (unbiased), min, max.
struct SampleStats {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1 denominator); 0 when n < 2
  double min = 0.0;
  double max = 0.0;
};

/// Computes summary statistics of `xs`. Empty input yields a zero struct.
SampleStats summarize(const std::vector<double>& xs);

/// Result of Welch's two-sample t-test.
struct TTestResult {
  double t = 0.0;             ///< t statistic
  double dof = 0.0;           ///< Welch–Satterthwaite degrees of freedom
  double p_two_sided = 1.0;   ///< two-sided p-value
  bool significant_at_5pct = false;
};

/// Welch's unequal-variance t-test between samples `a` and `b`.
/// Requires both samples to have at least two elements; otherwise returns
/// the default (non-significant) result.
TTestResult welch_t_test(const std::vector<double>& a, const std::vector<double>& b);

/// Quantile of a sample by linear interpolation between order statistics
/// (the common "type 7" estimator). `xs` must be sorted ascending; `q` is
/// clamped to [0, 1]. Empty input returns 0.
double percentile(const std::vector<double>& xs, double q);

/// N50 of a set of lengths: the largest L such that contigs of length >= L
/// cover at least half of the total bases. Standard assembly quality metric.
std::size_t n50(std::vector<std::size_t> lengths);

}  // namespace trinity::util
