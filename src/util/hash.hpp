#pragma once
// FNV-1a 64-bit hashing over bytes, strings, and files.
//
// The checkpoint subsystem fingerprints pipeline options and stage
// artifacts so a resumed run can prove the on-disk state still matches
// what the manifest recorded. FNV-1a is deliberate: a fast, dependency-free
// content hash (the xxhash role in production assemblers) — not a
// cryptographic digest, which artifact validation does not need.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace trinity::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Folds `len` bytes into a running FNV-1a state.
[[nodiscard]] std::uint64_t fnv1a_append(std::uint64_t state, const void* data,
                                         std::size_t len);

/// FNV-1a 64 of a byte range.
[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t len) {
  return fnv1a_append(kFnvOffsetBasis, data, len);
}

/// FNV-1a 64 of a string.
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view s) {
  return fnv1a(s.data(), s.size());
}

/// Streaming FNV-1a 64 over a file's contents. Throws std::runtime_error
/// when the file cannot be opened.
[[nodiscard]] std::uint64_t fnv1a_file(const std::string& path);

}  // namespace trinity::util
