#pragma once
// ResourceTrace: the paper used Collectl to plot RAM usage against runtime
// for each Trinity stage (Figures 2 and 11). This is the in-library
// substitute: phases are opened and closed by name; each phase records wall
// time, process CPU time, and RSS before/after plus the peak observed by a
// background sampler.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "util/timer.hpp"

namespace trinity::util {

/// A named scalar attached to a phase by the code running inside it, e.g.
/// "allgatherv_bytes" or "skew_ratio". Counters carry whatever quantity a
/// stage wants to surface in the trace next to its time/memory row.
struct PhaseCounter {
  std::string name;
  double value = 0.0;
};

/// One completed pipeline phase in a trace.
struct PhaseRecord {
  std::string name;
  double start_seconds = 0.0;     ///< wall-clock offset from trace start
  double wall_seconds = 0.0;      ///< phase duration
  double cpu_seconds = 0.0;       ///< process CPU consumed during the phase
  std::uint64_t rss_before = 0;   ///< RSS at phase entry, bytes
  std::uint64_t rss_after = 0;    ///< RSS at phase exit, bytes
  std::uint64_t rss_peak = 0;     ///< max RSS sampled while phase ran, bytes
  std::vector<PhaseCounter> counters;  ///< attachments, in insertion order

  /// Counter lookup by name; nullptr when absent.
  [[nodiscard]] const PhaseCounter* counter(const std::string& counter_name) const;
};

/// Collects a sequence of named phases with time and memory accounting.
/// Thread-compatible: begin/end must be called from one orchestration
/// thread; the sampler runs on its own thread.
class ResourceTrace {
 public:
  /// @param sample_interval_ms period of the background RSS sampler;
  ///        0 disables sampling (rss_peak falls back to max(before, after)).
  explicit ResourceTrace(int sample_interval_ms = 50);
  ~ResourceTrace();
  ResourceTrace(const ResourceTrace&) = delete;
  ResourceTrace& operator=(const ResourceTrace&) = delete;

  /// Opens a phase. Phases may not nest.
  void begin_phase(const std::string& name);

  /// Closes the currently open phase and appends its record.
  void end_phase();

  /// Attaches a named scalar to the currently open phase. Repeated calls
  /// with the same name overwrite the value (the last write wins), so a
  /// retried stage reports its final attempt. Throws when no phase is open.
  void counter(const std::string& name, double value);

  /// Runs `fn` bracketed by begin/end of a phase named `name`.
  template <typename Fn>
  void phase(const std::string& name, Fn&& fn) {
    begin_phase(name);
    fn();
    end_phase();
  }

  /// All completed phases, in execution order.
  [[nodiscard]] const std::vector<PhaseRecord>& records() const { return records_; }

  /// Total wall time covered by completed phases.
  [[nodiscard]] double total_wall_seconds() const;

  /// Writes a human-readable table (one row per phase) to `out`.
  void print_table(std::ostream& out) const;

  /// Writes the trace as CSV with a header row.
  void write_csv(std::ostream& out) const;

 private:
  void sampler_loop(int interval_ms);

  std::vector<PhaseRecord> records_;
  Timer trace_clock_;
  bool phase_open_ = false;
  PhaseRecord open_record_;
  double open_cpu_start_ = 0.0;
  Timer open_wall_;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> sampled_peak_{0};
  std::atomic<bool> sampling_active_{false};
  std::thread sampler_;
};

}  // namespace trinity::util
