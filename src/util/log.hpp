#pragma once
// Lightweight leveled logging for the trinity-parallel library.
//
// Logging is intentionally minimal: a global level, a mutex-guarded sink,
// and printf-free iostream formatting. Benchmarks set the level to Warn to
// keep harness output clean; tests may raise it to Debug.

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace trinity::util {

/// Severity levels, in increasing order of verbosity.
enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Returns the process-wide mutable log level. Defaults to Info.
LogLevel& log_level();

/// Returns true when messages at `level` should be emitted.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

namespace detail {
/// Serializes a fully formatted log line to stderr under a global mutex.
void log_emit(LogLevel level, const std::string& msg);
}  // namespace detail

/// Stream-style log statement builder. Usage:
///   LOG_INFO() << "counted " << n << " kmers";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (log_enabled(level_)) detail::log_emit(level_, out_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (log_enabled(level_)) out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace trinity::util

#define LOG_ERROR() ::trinity::util::LogLine(::trinity::util::LogLevel::Error)
#define LOG_WARN() ::trinity::util::LogLine(::trinity::util::LogLevel::Warn)
#define LOG_INFO() ::trinity::util::LogLine(::trinity::util::LogLevel::Info)
#define LOG_DEBUG() ::trinity::util::LogLine(::trinity::util::LogLevel::Debug)
