#include "util/cli.hpp"

#include <stdexcept>

namespace trinity::util {

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  CliArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("bare '--' is not a valid option");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      out.options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself an option.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      out.options_[body] = argv[i + 1];
      ++i;
    } else {
      out.options_[body] = "";
    }
  }
  return out;
}

bool CliArgs::has(const std::string& name) const { return options_.count(name) != 0; }

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_string(const std::string& name, const std::string& dflt) const {
  const auto v = get(name);
  return v ? *v : dflt;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t dflt) const {
  const auto v = get(name);
  if (!v) return dflt;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" + *v + "'");
  }
}

double CliArgs::get_double(const std::string& name, double dflt) const {
  const auto v = get(name);
  if (!v) return dflt;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" + *v + "'");
  }
}

bool CliArgs::get_bool(const std::string& name, bool dflt) const {
  const auto v = get(name);
  if (!v) return dflt;
  if (v->empty() || *v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("option --" + name + " expects a boolean, got '" + *v + "'");
}

}  // namespace trinity::util
