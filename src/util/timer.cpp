#include "util/timer.hpp"

namespace trinity::util {

namespace {
double clock_seconds(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}
}  // namespace

double thread_cpu_seconds() { return clock_seconds(CLOCK_THREAD_CPUTIME_ID); }

double process_cpu_seconds() { return clock_seconds(CLOCK_PROCESS_CPUTIME_ID); }

}  // namespace trinity::util
