#pragma once
// Assembly summary statistics: the numbers every assembler README reports
// (counts, N50, GC content, length distribution). Used by the examples and
// handy for downstream QC.

#include <array>
#include <cstddef>
#include <ostream>
#include <vector>

#include "seq/sequence.hpp"

namespace trinity::validate {

/// Summary of a contig or transcript set.
struct AssemblyStats {
  std::size_t count = 0;
  std::size_t total_bases = 0;
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  double mean_length = 0.0;
  std::size_t n50 = 0;
  double gc_fraction = 0.0;  ///< G+C over all A/C/G/T bases
};

/// Computes summary statistics over a sequence set.
AssemblyStats assembly_stats(const std::vector<seq::Sequence>& seqs);

/// Length histogram with the given bin width; the last bin is open-ended.
/// Returns bin counts; bin i covers [i*bin_width, (i+1)*bin_width).
std::vector<std::size_t> length_histogram(const std::vector<seq::Sequence>& seqs,
                                          std::size_t bin_width, std::size_t num_bins);

/// Prints the stats in a compact human-readable block.
void print_assembly_stats(std::ostream& out, const AssemblyStats& stats);

}  // namespace trinity::validate
