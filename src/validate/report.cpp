#include "validate/report.hpp"

#include <iomanip>

#include "util/stats.hpp"

namespace trinity::validate {

void write_categories_csv(std::ostream& out, const std::vector<CategorySeries>& series) {
  out << "series,full_identical,full_diverged,partial,unmatched,partial_identity_mean\n";
  for (const auto& s : series) {
    const auto id_stats = util::summarize(s.counts.partial_identities);
    out << s.label << ',' << s.counts.full_identical << ',' << s.counts.full_diverged << ','
        << s.counts.partial << ',' << s.counts.unmatched << ',' << id_stats.mean << '\n';
  }
}

void write_reference_csv(std::ostream& out, const std::vector<ReferenceSeries>& series) {
  out << "series,full_length_genes,full_length_isoforms,fused_genes,fused_isoforms\n";
  for (const auto& s : series) {
    out << s.label << ',' << s.comparison.full_length_genes << ','
        << s.comparison.full_length_isoforms << ',' << s.comparison.fused_genes << ','
        << s.comparison.fused_isoforms << '\n';
  }
}

void write_markdown_report(std::ostream& out, const std::string& dataset_description,
                           const std::vector<CategorySeries>& categories,
                           const std::vector<ReferenceSeries>& references,
                           const util::TTestResult& t_test) {
  out << "# Validation report\n\n";
  out << "dataset: " << dataset_description << "\n\n";

  if (!categories.empty()) {
    out << "## All-to-all Smith-Waterman categories (paper Figure 4)\n\n";
    out << "| series | (a) full 100% | (b) full <100% | (c) partial | unmatched |\n";
    out << "|---|---|---|---|---|\n";
    for (const auto& s : categories) {
      out << "| " << s.label << " | " << s.counts.full_identical << " | "
          << s.counts.full_diverged << " | " << s.counts.partial << " | "
          << s.counts.unmatched << " |\n";
    }
    out << '\n';
  }

  if (!references.empty()) {
    out << "## Reference comparison (paper Figures 5 and 6)\n\n";
    out << "| series | full-length genes | full-length isoforms | fused genes | fused "
           "isoforms |\n";
    out << "|---|---|---|---|---|\n";
    for (const auto& s : references) {
      out << "| " << s.label << " | " << s.comparison.full_length_genes << " | "
          << s.comparison.full_length_isoforms << " | " << s.comparison.fused_genes << " | "
          << s.comparison.fused_isoforms << " |\n";
    }
    out << '\n';
  }

  out << "## Two-sample t-test\n\n";
  out << "t = " << std::fixed << std::setprecision(3) << t_test.t
      << ", p = " << t_test.p_two_sided << " → "
      << (t_test.significant_at_5pct
              ? "SIGNIFICANT difference (deviates from the paper's finding)"
              : "no significant difference (matches the paper's finding)")
      << '\n';
}

}  // namespace trinity::validate
