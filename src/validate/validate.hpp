#pragma once
// The Section-IV validation harness.
//
// Test 1 (Figure 4): all-to-all Smith–Waterman comparison of the transcript
// sets from two runs, categorized as (a) 100% identical over the full
// query length, (b) <100% identity over the full length, (c) partial-length
// alignment, with (d) the identity distribution inside category (c).
//
// Test 2 (Figures 5 and 6): alignment of reconstructed transcripts against
// a reference transcript set, counting fully reconstructed genes/isoforms
// and "fused" transcripts — single reconstructions spanning multiple
// full-length references from different genes.
//
// Full SW against every pair would be quadratic in transcripts; a shared-
// k-mer prefilter picks a handful of candidates per query first, exactly
// the role the FASTA program's heuristic stages play around its SW kernel.

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.hpp"
#include "sw/smith_waterman.hpp"
#include "util/stats.hpp"

namespace trinity::validate {

/// Thresholds for "full length" and "identical".
struct ValidationOptions {
  int prefilter_k = 25;             ///< k-mer size of the candidate filter
  std::size_t min_shared_kmers = 5; ///< shared k-mers to become a candidate
  std::size_t max_candidates = 5;   ///< SW alignments per query
  /// Alignment span / sequence length for a "full length" call. 0.95 is
  /// the conventional RNA-seq criterion; assembled ends lose a few bases
  /// to the error-k-mer prune, exactly as in real Trinity output.
  double full_length_coverage = 0.95;
  double identical_threshold = 0.999;  ///< identity counted as "100%"
  double min_fused_identity = 0.95;    ///< identity for a fused hit
};

/// Figure 4 result: query counts per category plus the (c) identities.
struct CategoryCounts {
  std::size_t full_identical = 0;    ///< (a)
  std::size_t full_diverged = 0;     ///< (b)
  std::size_t partial = 0;           ///< (c)
  std::size_t unmatched = 0;         ///< no candidate aligned at all
  std::vector<double> partial_identities;  ///< (d)

  [[nodiscard]] std::size_t total() const {
    return full_identical + full_diverged + partial + unmatched;
  }
};

/// Categorizes every transcript of `query_set` against its best match in
/// `target_set` (Figure 4's "Parallel" bar aligns the parallel run against
/// the original run; the "Original" bar aligns two original runs).
CategoryCounts all_to_all_categories(const std::vector<seq::Sequence>& query_set,
                                     const std::vector<seq::Sequence>& target_set,
                                     const ValidationOptions& options = {});

/// Figures 5 and 6 result for one run against a reference set.
struct ReferenceComparison {
  std::size_t full_length_genes = 0;     ///< genes with >= 1 full-length isoform
  std::size_t full_length_isoforms = 0;  ///< reference isoforms recovered full length
  std::size_t fused_genes = 0;           ///< genes involved in a fusion
  std::size_t fused_isoforms = 0;        ///< reconstructed transcripts that fuse
};

/// Compares reconstructed transcripts to a reference transcriptome.
/// `gene_of_reference[i]` is the gene id of reference transcript i.
ReferenceComparison compare_to_reference(const std::vector<seq::Sequence>& reconstructed,
                                         const std::vector<seq::Sequence>& reference,
                                         const std::vector<std::int32_t>& gene_of_reference,
                                         const ValidationOptions& options = {});

/// The paper's statistical check: a two-sample t-test over a per-run metric
/// from repeated runs of each version. Returns the Welch test result.
util::TTestResult compare_run_metric(const std::vector<double>& original_runs,
                                     const std::vector<double>& parallel_runs);

}  // namespace trinity::validate
