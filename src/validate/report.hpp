#pragma once
// Report writers for the validation harness: the Section-IV results as a
// human-readable markdown document and as machine-readable CSV series
// (what you would feed a plotting script to redraw Figures 4-6).

#include <ostream>
#include <string>
#include <vector>

#include "validate/validate.hpp"

namespace trinity::validate {

/// One named run-comparison series (e.g. "parallel vs original").
struct CategorySeries {
  std::string label;
  CategoryCounts counts;
};

/// One named reference-comparison series.
struct ReferenceSeries {
  std::string label;
  ReferenceComparison comparison;
};

/// Writes the Figure-4-style category table as CSV:
///   series,full_identical,full_diverged,partial,unmatched,partial_identity_mean
void write_categories_csv(std::ostream& out, const std::vector<CategorySeries>& series);

/// Writes the Figure-5/6-style reference table as CSV:
///   series,full_length_genes,full_length_isoforms,fused_genes,fused_isoforms
void write_reference_csv(std::ostream& out, const std::vector<ReferenceSeries>& series);

/// Writes a complete markdown validation report: dataset line, category
/// table, reference table (either may be empty), and the t-test verdict.
void write_markdown_report(std::ostream& out, const std::string& dataset_description,
                           const std::vector<CategorySeries>& categories,
                           const std::vector<ReferenceSeries>& references,
                           const util::TTestResult& t_test);

}  // namespace trinity::validate
