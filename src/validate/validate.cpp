#include "validate/validate.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "seq/kmer.hpp"

namespace trinity::validate {

namespace {

/// Shared-k-mer candidate filter: maps each query to the target indices
/// sharing the most canonical k-mers.
class CandidateFinder {
 public:
  CandidateFinder(const std::vector<seq::Sequence>& targets, const ValidationOptions& options)
      : targets_(targets), options_(options), codec_(options.prefilter_k) {
    for (std::size_t t = 0; t < targets.size(); ++t) {
      std::unordered_set<seq::KmerCode> seen;
      for (const auto& occ : codec_.extract_canonical(targets[t].bases)) {
        if (seen.insert(occ.code).second) {
          index_[occ.code].push_back(static_cast<std::int32_t>(t));
        }
      }
    }
  }

  /// Target indices ordered by decreasing shared-k-mer count, truncated to
  /// max_candidates; targets below min_shared_kmers are dropped.
  std::vector<std::int32_t> candidates(const seq::Sequence& query) const {
    std::unordered_map<std::int32_t, std::size_t> shared;
    std::unordered_set<seq::KmerCode> seen;
    for (const auto& occ : codec_.extract_canonical(query.bases)) {
      if (!seen.insert(occ.code).second) continue;
      const auto it = index_.find(occ.code);
      if (it == index_.end()) continue;
      for (const auto t : it->second) ++shared[t];
    }
    std::vector<std::pair<std::int32_t, std::size_t>> ranked;
    for (const auto& [t, n] : shared) {
      if (n >= options_.min_shared_kmers) ranked.emplace_back(t, n);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (ranked.size() > options_.max_candidates) ranked.resize(options_.max_candidates);
    std::vector<std::int32_t> out;
    out.reserve(ranked.size());
    for (const auto& [t, n] : ranked) out.push_back(t);
    return out;
  }

 private:
  const std::vector<seq::Sequence>& targets_;
  const ValidationOptions& options_;
  seq::KmerCodec codec_;
  std::unordered_map<seq::KmerCode, std::vector<std::int32_t>> index_;
};

}  // namespace

CategoryCounts all_to_all_categories(const std::vector<seq::Sequence>& query_set,
                                     const std::vector<seq::Sequence>& target_set,
                                     const ValidationOptions& options) {
  CategoryCounts counts;
  const CandidateFinder finder(target_set, options);

  for (const auto& query : query_set) {
    sw::Alignment best;
    for (const auto t : finder.candidates(query)) {
      const auto aln = sw::align_best_strand(query.bases, target_set[static_cast<std::size_t>(t)].bases);
      if (aln.score > best.score) best = aln;
    }
    if (best.score <= 0) {
      ++counts.unmatched;
      continue;
    }
    const double coverage = best.query_coverage(query.bases.size());
    const double identity = best.identity();
    if (coverage >= options.full_length_coverage) {
      if (identity >= options.identical_threshold) {
        ++counts.full_identical;
      } else {
        ++counts.full_diverged;
      }
    } else {
      ++counts.partial;
      counts.partial_identities.push_back(identity);
    }
  }
  return counts;
}

ReferenceComparison compare_to_reference(const std::vector<seq::Sequence>& reconstructed,
                                         const std::vector<seq::Sequence>& reference,
                                         const std::vector<std::int32_t>& gene_of_reference,
                                         const ValidationOptions& options) {
  ReferenceComparison out;
  const CandidateFinder finder(reference, options);

  std::unordered_set<std::int32_t> full_length_refs;  // reference isoform ids
  std::unordered_set<std::int32_t> full_length_gene_set;
  std::unordered_set<std::int32_t> fused_gene_set;

  for (const auto& rec : reconstructed) {
    // All references this reconstruction contains at full (reference)
    // length; two hits from different genes make it a fusion.
    std::vector<std::int32_t> contained;
    for (const auto t : finder.candidates(rec)) {
      const auto& ref = reference[static_cast<std::size_t>(t)];
      const auto aln = sw::align_best_strand(ref.bases, rec.bases);
      if (aln.score <= 0) continue;
      const double ref_coverage = aln.query_coverage(ref.bases.size());
      if (ref_coverage >= options.full_length_coverage &&
          aln.identity() >= options.min_fused_identity) {
        contained.push_back(t);
        full_length_refs.insert(t);
      }
    }
    std::unordered_set<std::int32_t> genes;
    for (const auto t : contained) {
      genes.insert(gene_of_reference[static_cast<std::size_t>(t)]);
    }
    if (genes.size() >= 2) {
      ++out.fused_isoforms;
      fused_gene_set.insert(genes.begin(), genes.end());
    }
  }

  for (const auto ref : full_length_refs) {
    full_length_gene_set.insert(gene_of_reference[static_cast<std::size_t>(ref)]);
  }
  out.full_length_isoforms = full_length_refs.size();
  out.full_length_genes = full_length_gene_set.size();
  out.fused_genes = fused_gene_set.size();
  return out;
}

util::TTestResult compare_run_metric(const std::vector<double>& original_runs,
                                     const std::vector<double>& parallel_runs) {
  return util::welch_t_test(original_runs, parallel_runs);
}

}  // namespace trinity::validate
