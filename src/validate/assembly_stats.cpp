#include "validate/assembly_stats.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace trinity::validate {

AssemblyStats assembly_stats(const std::vector<seq::Sequence>& seqs) {
  AssemblyStats s;
  s.count = seqs.size();
  if (seqs.empty()) return s;

  std::vector<std::size_t> lengths;
  lengths.reserve(seqs.size());
  std::size_t gc = 0;
  std::size_t acgt = 0;
  for (const auto& rec : seqs) {
    lengths.push_back(rec.bases.size());
    s.total_bases += rec.bases.size();
    for (const char c : rec.bases) {
      switch (c) {
        case 'G': case 'g': case 'C': case 'c':
          ++gc;
          ++acgt;
          break;
        case 'A': case 'a': case 'T': case 't':
          ++acgt;
          break;
        default:
          break;
      }
    }
  }
  s.min_length = *std::min_element(lengths.begin(), lengths.end());
  s.max_length = *std::max_element(lengths.begin(), lengths.end());
  s.mean_length = static_cast<double>(s.total_bases) / static_cast<double>(s.count);
  s.n50 = util::n50(lengths);
  s.gc_fraction = acgt == 0 ? 0.0 : static_cast<double>(gc) / static_cast<double>(acgt);
  return s;
}

std::vector<std::size_t> length_histogram(const std::vector<seq::Sequence>& seqs,
                                          std::size_t bin_width, std::size_t num_bins) {
  std::vector<std::size_t> bins(num_bins, 0);
  if (bin_width == 0 || num_bins == 0) return bins;
  for (const auto& rec : seqs) {
    const std::size_t bin = std::min(rec.bases.size() / bin_width, num_bins - 1);
    ++bins[bin];
  }
  return bins;
}

void print_assembly_stats(std::ostream& out, const AssemblyStats& s) {
  out << "sequences: " << s.count << "\ntotal bases: " << s.total_bases
      << "\nlength min/mean/max: " << s.min_length << " / " << s.mean_length << " / "
      << s.max_length << "\nN50: " << s.n50 << "\nGC: " << s.gc_fraction * 100.0 << "%\n";
}

}  // namespace trinity::validate
