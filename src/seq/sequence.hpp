#pragma once
// Sequence records: the unit of FASTA/FASTQ I/O and of every pipeline stage.

#include <cstddef>
#include <string>
#include <vector>

namespace trinity::seq {

/// A named nucleotide sequence (a read, a contig, or a transcript).
struct Sequence {
  std::string name;  ///< record id (FASTA header up to first whitespace)
  std::string bases;
  /// Per-base Phred+33 quality string (FASTQ); empty when unknown (FASTA).
  /// When present, always the same length as `bases`.
  std::string quality;

  [[nodiscard]] std::size_t length() const { return bases.size(); }
  [[nodiscard]] bool has_quality() const { return !quality.empty(); }
};

/// Total bases across a set of sequences.
std::size_t total_bases(const std::vector<Sequence>& seqs);

}  // namespace trinity::seq
