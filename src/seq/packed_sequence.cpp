#include "seq/packed_sequence.hpp"

#include <algorithm>
#include <stdexcept>

#include "seq/sequence.hpp"

namespace trinity::seq {

std::optional<PackedSequence> PackedSequence::pack(std::string_view bases) {
  PackedSequence out;
  out.size_ = bases.size();
  out.words_.assign((bases.size() + 31) / 32, 0);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const std::uint8_t code = base_to_code(bases[i]);
    if (code == kInvalidBase) return std::nullopt;
    out.words_[i / 32] |= static_cast<std::uint64_t>(code) << (2 * (i % 32));
  }
  return out;
}

PackedSequence PackedSequence::pack_or_throw(std::string_view bases) {
  auto packed = pack(bases);
  if (!packed) {
    throw std::invalid_argument("PackedSequence: sequence contains a non-ACGT base");
  }
  return std::move(*packed);
}

std::string PackedSequence::unpack() const { return unpack_substr(0, size_); }

std::string PackedSequence::unpack_substr(std::size_t pos, std::size_t len) const {
  if (pos >= size_) return {};
  len = std::min(len, size_ - pos);
  std::string out(len, 'A');
  for (std::size_t i = 0; i < len; ++i) out[i] = at(pos + i);
  return out;
}

std::optional<KmerCode> PackedSequence::kmer_at(std::size_t pos, int k) const {
  if (k < 1 || k > 32) throw std::invalid_argument("PackedSequence::kmer_at: bad k");
  if (pos + static_cast<std::size_t>(k) > size_) return std::nullopt;
  KmerCode code = 0;
  for (int i = 0; i < k; ++i) {
    code = (code << 2) | code_at(pos + static_cast<std::size_t>(i));
  }
  return code;
}

PackedStore pack_store(const std::vector<Sequence>& seqs) {
  PackedStore store;
  store.sequences.reserve(seqs.size());
  store.names.reserve(seqs.size());
  for (const auto& s : seqs) {
    auto packed = PackedSequence::pack(s.bases);
    if (!packed) {
      ++store.dropped;
      continue;
    }
    store.sequences.push_back(std::move(*packed));
    store.names.push_back(s.name);
  }
  return store;
}

}  // namespace trinity::seq
