#include "seq/fasta.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "io/io_file.hpp"
#include "seq/sequence.hpp"

namespace trinity::seq {

namespace {

// Returns the id token of a header line (text after '>'/'@', up to the
// first whitespace).
std::string header_name(const std::string& line) {
  std::string body = line.substr(1);
  const auto ws = body.find_first_of(" \t");
  if (ws != std::string::npos) body.resize(ws);
  return body;
}

// Printable rendering of a (possibly binary) byte for error messages.
std::string printable(char c) {
  if (std::isprint(static_cast<unsigned char>(c))) return std::string(1, c);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "\\x%02x", static_cast<unsigned char>(c));
  return buf;
}

}  // namespace

const char* to_string(ParsePolicy policy) {
  switch (policy) {
    case ParsePolicy::kStrict: return "strict";
    case ParsePolicy::kTolerant: return "tolerant";
    case ParsePolicy::kRepair: return "repair";
  }
  return "unknown";
}

ParsePolicy parse_policy_from_string(std::string_view name) {
  for (const ParsePolicy p :
       {ParsePolicy::kStrict, ParsePolicy::kTolerant, ParsePolicy::kRepair}) {
    if (name == to_string(p)) return p;
  }
  throw std::invalid_argument("unknown parse policy: " + std::string(name));
}

FastaReader::FastaReader(const std::string& path, ParsePolicy policy)
    : in_(path), path_(path), policy_(policy) {
  if (!in_) {
    throw io::IoError(io::IoErrorKind::kPermanent, "open", path, errno, "cannot open");
  }
}

bool FastaReader::next_line(std::string& line) {
  if (!std::getline(in_, line)) return false;
  ++line_number_;
  line_offset_ = next_offset_;
  next_offset_ += line.size() + (in_.eof() ? 0 : 1);
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
    ++diagnostics_.crlf_lines;
  }
  // Trailing whitespace is formatting noise, never sequence data.
  const auto last = line.find_last_not_of(" \t");
  line.resize(last == std::string::npos ? 0 : last + 1);
  return true;
}

void FastaReader::malformed(io::ParseCategory category, std::size_t line,
                            std::uint64_t offset, const std::string& detail) {
  if (policy_ == ParsePolicy::kStrict) {
    throw io::ParseError(category, path_, line, offset, detail);
  }
  ++diagnostics_.of(category);
}

bool FastaReader::check_bases(std::string& bases, bool& repaired_record) {
  for (const char c : bases) {
    if (std::isalpha(static_cast<unsigned char>(c))) continue;
    if (policy_ == ParsePolicy::kRepair) {
      for (char& b : bases) {
        if (!std::isalpha(static_cast<unsigned char>(b))) b = 'N';
      }
      repaired_record = true;
      return true;
    }
    malformed(io::ParseCategory::kInvalidCharacter, line_number_, line_offset_,
              "invalid character '" + printable(c) + "' in sequence data");
    return false;  // tolerant: caller quarantines (strict threw above)
  }
  return true;
}

std::optional<Sequence> FastaReader::next() {
  for (;;) {
    quarantined_record_ = false;
    if (!format_known_) {
      // Scan for the first header line to decide the format. Anything
      // else before it is one destroyed leading record.
      std::string line;
      bool complained = false;
      while (next_line(line)) {
        if (line.empty()) {
          ++diagnostics_.blank_lines;
          continue;
        }
        if (line[0] == '>' || line[0] == '@') {
          is_fastq_ = line[0] == '@';
          pending_header_ = line;
          pending_header_line_ = line_number_;
          pending_header_offset_ = line_offset_;
          format_known_ = true;
          break;
        }
        if (!complained) {
          malformed(io::ParseCategory::kMissingHeader, line_number_, line_offset_,
                    "'" + path_ + "' does not start with a FASTA/FASTQ header");
          complained = true;
        }
      }
      if (!format_known_) return std::nullopt;  // empty (or all-garbage) file
    }
    auto rec = is_fastq_ ? next_fastq() : next_fasta();
    if (rec) {
      ++records_read_;
      ++diagnostics_.records_ok;
      return rec;
    }
    if (!quarantined_record_) return std::nullopt;  // end of file
    // A record was quarantined under kTolerant/kRepair: keep reading.
  }
}

std::optional<Sequence> FastaReader::next_fasta() {
  if (pending_header_.empty()) return std::nullopt;
  Sequence rec;
  rec.name = header_name(pending_header_);
  pending_header_.clear();
  bool repaired = false;
  bool bad = false;
  std::string line;
  while (next_line(line)) {
    if (line.empty()) {
      ++diagnostics_.blank_lines;
      continue;
    }
    if (line[0] == '>') {
      pending_header_ = line;
      pending_header_line_ = line_number_;
      pending_header_offset_ = line_offset_;
      break;
    }
    // A record already marked bad still consumes its remaining lines so
    // the reader stays synchronized (counted once, not per line).
    if (!bad && !check_bases(line, repaired)) bad = true;
    if (!bad) rec.bases += line;
  }
  if (bad) {
    quarantined_record_ = true;
    return std::nullopt;
  }
  if (repaired) ++diagnostics_.records_repaired;
  return rec;
}

std::optional<Sequence> FastaReader::next_fastq() {
  if (pending_header_.empty()) return std::nullopt;
  Sequence rec;
  rec.name = header_name(pending_header_);
  const std::size_t rec_line = pending_header_line_;
  const std::uint64_t rec_offset = pending_header_offset_;
  pending_header_.clear();

  // Reads the next non-blank line of the 4-line record.
  const auto read_part = [this](std::string& out) {
    while (next_line(out)) {
      if (!out.empty()) return true;
      ++diagnostics_.blank_lines;
    }
    return false;
  };

  std::string seq_line;
  std::string plus_line;
  std::string qual_line;
  if (!read_part(seq_line) ) {
    malformed(io::ParseCategory::kTruncatedRecord, rec_line, rec_offset,
              "truncated FASTQ record '" + rec.name + "' (EOF before sequence line)");
    quarantined_record_ = true;
    return std::nullopt;
  }
  if (!read_part(plus_line)) {
    malformed(io::ParseCategory::kTruncatedRecord, rec_line, rec_offset,
              "truncated FASTQ record '" + rec.name + "' (EOF before '+' separator)");
    quarantined_record_ = true;
    return std::nullopt;
  }
  if (plus_line[0] != '+') {
    malformed(io::ParseCategory::kBadSeparator, line_number_, line_offset_,
              "malformed FASTQ separator for '" + rec.name + "': expected '+', got '" +
                  printable(plus_line[0]) + "'");
    // Resynchronize at the next header so one bad record costs one record.
    std::string line;
    while (next_line(line)) {
      if (line.empty()) {
        ++diagnostics_.blank_lines;
        continue;
      }
      if (line[0] == '@') {
        pending_header_ = line;
        pending_header_line_ = line_number_;
        pending_header_offset_ = line_offset_;
        break;
      }
    }
    quarantined_record_ = true;
    return std::nullopt;
  }
  if (!read_part(qual_line)) {
    malformed(io::ParseCategory::kTruncatedRecord, rec_line, rec_offset,
              "truncated FASTQ record '" + rec.name + "' (EOF before quality line)");
    quarantined_record_ = true;
    return std::nullopt;
  }

  bool repaired = false;
  bool bad = false;
  if (!check_bases(seq_line, repaired)) bad = true;
  if (!bad && qual_line.size() != seq_line.size()) {
    if (policy_ == ParsePolicy::kRepair) {
      qual_line.resize(seq_line.size(), 'F');  // pad/trim to the sequence length
      repaired = true;
    } else {
      malformed(io::ParseCategory::kQualityLengthMismatch, line_number_, line_offset_,
                "FASTQ quality length " + std::to_string(qual_line.size()) +
                    " != sequence length " + std::to_string(seq_line.size()) + " for '" +
                    rec.name + "'");
      bad = true;
    }
  }
  rec.bases = seq_line;
  rec.quality = qual_line;

  // Look ahead for the next record header; garbage between records is one
  // destroyed record, skipped after being counted.
  std::string line;
  bool complained = false;
  while (next_line(line)) {
    if (line.empty()) {
      ++diagnostics_.blank_lines;
      continue;
    }
    if (line[0] == '@') {
      pending_header_ = line;
      pending_header_line_ = line_number_;
      pending_header_offset_ = line_offset_;
      break;
    }
    if (!complained) {
      malformed(io::ParseCategory::kMissingHeader, line_number_, line_offset_,
                "expected FASTQ header, got '" + printable(line[0]) + "'");
      complained = true;
    }
  }

  if (bad) {
    quarantined_record_ = true;
    return std::nullopt;
  }
  if (repaired) ++diagnostics_.records_repaired;
  return rec;
}

std::vector<Sequence> FastaReader::read_chunk(std::size_t max_records) {
  std::vector<Sequence> out;
  out.reserve(max_records);
  while (out.size() < max_records) {
    auto rec = next();
    if (!rec) break;
    out.push_back(std::move(*rec));
  }
  return out;
}

std::vector<Sequence> read_all(const std::string& path, ParsePolicy policy,
                               io::ParseDiagnostics* diagnostics) {
  FastaReader reader(path, policy);
  std::vector<Sequence> out;
  while (auto rec = reader.next()) out.push_back(std::move(*rec));
  if (diagnostics) *diagnostics = reader.diagnostics();
  return out;
}

void write_fasta(const std::string& path, const std::vector<Sequence>& seqs, std::size_t wrap) {
  std::string body;
  for (const auto& s : seqs) {
    body += '>';
    body += s.name;
    body += '\n';
    if (wrap == 0) {
      body += s.bases;
      body += '\n';
    } else {
      for (std::size_t i = 0; i < s.bases.size(); i += wrap) {
        body.append(s.bases, i, wrap);
        body += '\n';
      }
      if (s.bases.empty()) body += '\n';
    }
  }
  io::write_file(path, body);
}

void write_fastq(const std::string& path, const std::vector<Sequence>& seqs,
                 char default_quality) {
  std::string body;
  for (const auto& s : seqs) {
    if (s.has_quality() && s.quality.size() != s.bases.size()) {
      throw std::runtime_error("write_fastq: quality length mismatch for '" + s.name + "'");
    }
    body += '@';
    body += s.name;
    body += '\n';
    body += s.bases;
    body += "\n+\n";
    if (s.has_quality()) {
      body += s.quality;
    } else {
      body.append(s.bases.size(), default_quality);
    }
    body += '\n';
  }
  io::write_file(path, body);
}

std::size_t total_bases(const std::vector<Sequence>& seqs) {
  std::size_t total = 0;
  for (const auto& s : seqs) total += s.bases.size();
  return total;
}

}  // namespace trinity::seq
