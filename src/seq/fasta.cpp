#include "seq/fasta.hpp"

#include <stdexcept>

#include "seq/sequence.hpp"

namespace trinity::seq {

namespace {

// Strips trailing CR (for CRLF files) and returns the id token of a header.
std::string header_name(const std::string& line) {
  std::string body = line.substr(1);
  const auto ws = body.find_first_of(" \t");
  if (ws != std::string::npos) body.resize(ws);
  return body;
}

void chomp(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

FastaReader::FastaReader(const std::string& path) : in_(path), path_(path) {
  if (!in_) throw std::runtime_error("FastaReader: cannot open '" + path + "'");
}

std::optional<Sequence> FastaReader::next() {
  if (!format_known_) {
    // Peek the first non-empty line to decide the format.
    std::string line;
    while (std::getline(in_, line)) {
      chomp(line);
      if (line.empty()) continue;
      if (line[0] == '>') {
        is_fastq_ = false;
        pending_header_ = line;
      } else if (line[0] == '@') {
        is_fastq_ = true;
        pending_header_ = line;
      } else {
        throw std::runtime_error("FastaReader: '" + path_ +
                                 "' does not start with a FASTA/FASTQ header");
      }
      format_known_ = true;
      break;
    }
    if (!format_known_) return std::nullopt;  // empty file
  }
  auto rec = is_fastq_ ? next_fastq() : next_fasta();
  if (rec) ++records_read_;
  return rec;
}

std::optional<Sequence> FastaReader::next_fasta() {
  if (pending_header_.empty()) return std::nullopt;
  Sequence rec;
  rec.name = header_name(pending_header_);
  pending_header_.clear();
  std::string line;
  while (std::getline(in_, line)) {
    chomp(line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      pending_header_ = line;
      break;
    }
    rec.bases += line;
  }
  return rec;
}

std::optional<Sequence> FastaReader::next_fastq() {
  if (pending_header_.empty()) return std::nullopt;
  Sequence rec;
  rec.name = header_name(pending_header_);
  pending_header_.clear();

  std::string seq_line;
  std::string plus_line;
  std::string qual_line;
  if (!std::getline(in_, seq_line)) {
    throw std::runtime_error("FastaReader: truncated FASTQ record in '" + path_ + "'");
  }
  chomp(seq_line);
  if (!std::getline(in_, plus_line)) {
    throw std::runtime_error("FastaReader: truncated FASTQ record in '" + path_ + "'");
  }
  chomp(plus_line);
  if (plus_line.empty() || plus_line[0] != '+') {
    throw std::runtime_error("FastaReader: malformed FASTQ separator in '" + path_ + "'");
  }
  if (!std::getline(in_, qual_line)) {
    throw std::runtime_error("FastaReader: truncated FASTQ record in '" + path_ + "'");
  }
  chomp(qual_line);
  if (qual_line.size() != seq_line.size()) {
    throw std::runtime_error("FastaReader: FASTQ quality length mismatch in '" + path_ + "'");
  }
  rec.bases = seq_line;
  rec.quality = qual_line;

  // Look ahead for the next record header.
  std::string line;
  while (std::getline(in_, line)) {
    chomp(line);
    if (line.empty()) continue;
    if (line[0] != '@') {
      throw std::runtime_error("FastaReader: expected FASTQ header in '" + path_ + "'");
    }
    pending_header_ = line;
    break;
  }
  return rec;
}

std::vector<Sequence> FastaReader::read_chunk(std::size_t max_records) {
  std::vector<Sequence> out;
  out.reserve(max_records);
  while (out.size() < max_records) {
    auto rec = next();
    if (!rec) break;
    out.push_back(std::move(*rec));
  }
  return out;
}

std::vector<Sequence> read_all(const std::string& path) {
  FastaReader reader(path);
  std::vector<Sequence> out;
  while (auto rec = reader.next()) out.push_back(std::move(*rec));
  return out;
}

void write_fasta(const std::string& path, const std::vector<Sequence>& seqs, std::size_t wrap) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_fasta: cannot open '" + path + "'");
  for (const auto& s : seqs) {
    out << '>' << s.name << '\n';
    if (wrap == 0) {
      out << s.bases << '\n';
    } else {
      for (std::size_t i = 0; i < s.bases.size(); i += wrap) {
        out << s.bases.substr(i, wrap) << '\n';
      }
      if (s.bases.empty()) out << '\n';
    }
  }
  if (!out) throw std::runtime_error("write_fasta: write failure on '" + path + "'");
}

void write_fastq(const std::string& path, const std::vector<Sequence>& seqs,
                 char default_quality) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_fastq: cannot open '" + path + "'");
  for (const auto& s : seqs) {
    if (s.has_quality() && s.quality.size() != s.bases.size()) {
      throw std::runtime_error("write_fastq: quality length mismatch for '" + s.name + "'");
    }
    out << '@' << s.name << '\n' << s.bases << "\n+\n";
    if (s.has_quality()) {
      out << s.quality << '\n';
    } else {
      out << std::string(s.bases.size(), default_quality) << '\n';
    }
  }
  if (!out) throw std::runtime_error("write_fastq: write failure on '" + path + "'");
}

std::size_t total_bases(const std::vector<Sequence>& seqs) {
  std::size_t total = 0;
  for (const auto& s : seqs) total += s.bases.size();
  return total;
}

}  // namespace trinity::seq
