#pragma once
// Streaming FASTA/FASTQ readers and a FASTA writer.
//
// ReadsToTranscripts in the paper deliberately streams the read file in
// bounded chunks ("max_mem_reads") instead of loading it whole; the
// FastaReader below supports exactly that access pattern (next() /
// read_chunk()) while GraphFromFasta-style consumers can slurp with
// read_all(). Format is auto-detected from the first record character
// ('>' FASTA, '@' FASTQ).

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "seq/sequence.hpp"

namespace trinity::seq {

/// Streaming reader over a FASTA or FASTQ file.
class FastaReader {
 public:
  /// Opens `path`; throws std::runtime_error when the file cannot be read.
  explicit FastaReader(const std::string& path);

  /// Reads the next record, or std::nullopt at end of file. Throws
  /// std::runtime_error on malformed input (e.g. FASTQ record with
  /// mismatched quality length, sequence data before any header).
  std::optional<Sequence> next();

  /// Reads up to `max_records` records into a vector (the paper's
  /// max_mem_reads chunking). Returns an empty vector at end of file.
  std::vector<Sequence> read_chunk(std::size_t max_records);

  /// Number of records returned so far.
  [[nodiscard]] std::size_t records_read() const { return records_read_; }

 private:
  std::optional<Sequence> next_fasta();
  std::optional<Sequence> next_fastq();

  std::ifstream in_;
  std::string path_;
  std::string pending_header_;  // lookahead header line for FASTA
  bool is_fastq_ = false;
  bool format_known_ = false;
  std::size_t records_read_ = 0;
};

/// Reads every record of a FASTA/FASTQ file.
std::vector<Sequence> read_all(const std::string& path);

/// Writes sequences as FASTA with `wrap` columns per line (0 = no wrap).
void write_fasta(const std::string& path, const std::vector<Sequence>& seqs,
                 std::size_t wrap = 0);

/// Writes sequences as FASTQ. Records without a quality string get
/// `default_quality` (Phred+33) for every base.
void write_fastq(const std::string& path, const std::vector<Sequence>& seqs,
                 char default_quality = 'F');

}  // namespace trinity::seq
