#pragma once
// Streaming FASTA/FASTQ readers and a FASTA writer.
//
// ReadsToTranscripts in the paper deliberately streams the read file in
// bounded chunks ("max_mem_reads") instead of loading it whole; the
// FastaReader below supports exactly that access pattern (next() /
// read_chunk()) while GraphFromFasta-style consumers can slurp with
// read_all(). Format is auto-detected from the first record character
// ('>' FASTA, '@' FASTQ).
//
// Real read sets are dirty — truncated downloads, CRLF line endings, the
// occasional bit-flipped header — and with the paper's redundant-streaming
// scheme one bad record used to abort all P ranks at once. The reader
// therefore takes a ParsePolicy:
//
//  * kStrict (default): throw io::ParseError on the first malformed
//    record, carrying path, 1-based line, byte offset and a category.
//  * kTolerant: quarantine malformed records (skip them, counting each by
//    category in ParseDiagnostics) and keep going — the run completes and
//    reports exactly what it dropped.
//  * kRepair: additionally fix what is mechanically fixable (invalid
//    sequence bytes -> 'N', quality padded/truncated to the sequence
//    length); the unfixable still quarantines as in kTolerant.
//
// All policies absorb CRLF line endings, blank lines and trailing
// whitespace — formatting noise, not corruption (counted, not failed).

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "io/error.hpp"
#include "seq/sequence.hpp"

namespace trinity::seq {

/// How the reader treats malformed records. See the header comment.
enum class ParsePolicy { kStrict, kTolerant, kRepair };

[[nodiscard]] const char* to_string(ParsePolicy policy);

/// Parses a ParsePolicy name ("strict", "tolerant", "repair"); throws
/// std::invalid_argument on anything else. Used by CLI flags.
[[nodiscard]] ParsePolicy parse_policy_from_string(std::string_view name);

/// Streaming reader over a FASTA or FASTQ file.
class FastaReader {
 public:
  /// Opens `path`; throws io::IoError when the file cannot be read.
  explicit FastaReader(const std::string& path, ParsePolicy policy = ParsePolicy::kStrict);

  /// Reads the next well-formed (or repaired) record, or std::nullopt at
  /// end of file. Under ParsePolicy::kStrict throws io::ParseError on
  /// malformed input; under kTolerant/kRepair malformed records are
  /// quarantined (see diagnostics()) and reading continues.
  std::optional<Sequence> next();

  /// Reads up to `max_records` records into a vector (the paper's
  /// max_mem_reads chunking). Returns an empty vector at end of file.
  std::vector<Sequence> read_chunk(std::size_t max_records);

  /// Number of records returned so far.
  [[nodiscard]] std::size_t records_read() const { return records_read_; }

  /// Per-category quarantine/repair counts accumulated so far.
  [[nodiscard]] const io::ParseDiagnostics& diagnostics() const { return diagnostics_; }

 private:
  /// Reads the next raw line, tracking line number and byte offset and
  /// stripping CRLF + trailing whitespace. False at end of file.
  bool next_line(std::string& line);

  /// Reports a malformed record at line `line` / offset `offset`: throws
  /// under kStrict, otherwise counts a quarantined record of `category`.
  void malformed(io::ParseCategory category, std::size_t line, std::uint64_t offset,
                 const std::string& detail);

  /// Validates sequence bytes in-place per the policy. True when the line
  /// is acceptable (possibly repaired); false when the record must be
  /// quarantined (strict mode throws instead).
  bool check_bases(std::string& bases, bool& repaired_record);

  std::optional<Sequence> next_fasta();
  std::optional<Sequence> next_fastq();

  std::ifstream in_;
  std::string path_;
  ParsePolicy policy_;
  std::string pending_header_;       // lookahead header line
  std::size_t pending_header_line_ = 0;
  std::uint64_t pending_header_offset_ = 0;
  bool is_fastq_ = false;
  bool format_known_ = false;
  bool quarantined_record_ = false;  // set when a record was dropped; next() loops
  std::size_t records_read_ = 0;
  io::ParseDiagnostics diagnostics_;

  std::size_t line_number_ = 0;      // 1-based number of the last line read
  std::uint64_t line_offset_ = 0;    // byte offset of that line's start
  std::uint64_t next_offset_ = 0;    // byte offset one past the last line read
};

/// Reads every record of a FASTA/FASTQ file. `diagnostics`, when non-null,
/// receives the reader's quarantine counts (useful with kTolerant/kRepair).
std::vector<Sequence> read_all(const std::string& path,
                               ParsePolicy policy = ParsePolicy::kStrict,
                               io::ParseDiagnostics* diagnostics = nullptr);

/// Writes sequences as FASTA with `wrap` columns per line (0 = no wrap).
/// Throws io::IoError on storage failure.
void write_fasta(const std::string& path, const std::vector<Sequence>& seqs,
                 std::size_t wrap = 0);

/// Writes sequences as FASTQ. Records without a quality string get
/// `default_quality` (Phred+33) for every base.
void write_fastq(const std::string& path, const std::vector<Sequence>& seqs,
                 char default_quality = 'F');

}  // namespace trinity::seq
