#pragma once
// Packed k-mer representation: up to 32 bases in one uint64_t, 2 bits per
// base, most-significant-pair first so that integer comparison equals
// lexicographic comparison of the base string. A KmerCodec carries k and
// performs encode/decode, rolling extension, reverse complement and
// canonicalization (min of a k-mer and its reverse complement) — the
// standard strand-neutral key used by k-mer counters.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "seq/dna.hpp"

namespace trinity::seq {

/// A packed k-mer value. Only meaningful together with the k of the codec
/// that produced it.
using KmerCode = std::uint64_t;

/// Encoder/decoder for k-mers of a fixed k in [1, 32].
class KmerCodec {
 public:
  /// Throws std::invalid_argument when k is outside [1, 32].
  explicit KmerCodec(int k);

  [[nodiscard]] int k() const { return k_; }

  /// Encodes exactly the first k characters of `s` (s.size() must be >= k,
  /// all ACGT). Returns std::nullopt when any base is invalid.
  [[nodiscard]] std::optional<KmerCode> encode(std::string_view s) const;

  /// Decodes a packed k-mer back to its base string.
  [[nodiscard]] std::string decode(KmerCode code) const;

  /// Rolls the k-mer one base to the right: drops the leftmost base and
  /// appends `next` (a 2-bit code).
  [[nodiscard]] KmerCode roll_right(KmerCode code, std::uint8_t next) const {
    return ((code << 2) | next) & mask_;
  }

  /// Reverse complement of a packed k-mer.
  [[nodiscard]] KmerCode reverse_complement(KmerCode code) const;

  /// Canonical form: min(code, reverse_complement(code)).
  [[nodiscard]] KmerCode canonical(KmerCode code) const {
    const KmerCode rc = reverse_complement(code);
    return code < rc ? code : rc;
  }

  /// First (leftmost) base code of a packed k-mer.
  [[nodiscard]] std::uint8_t first_base(KmerCode code) const {
    return static_cast<std::uint8_t>((code >> (2 * (k_ - 1))) & 3u);
  }

  /// Last (rightmost) base code of a packed k-mer.
  [[nodiscard]] static std::uint8_t last_base(KmerCode code) {
    return static_cast<std::uint8_t>(code & 3u);
  }

  /// The (k-1)-length suffix of the k-mer, as a (k-1)-mer code. This is the
  /// overlap key used by Inchworm's greedy extension.
  [[nodiscard]] KmerCode suffix(KmerCode code) const { return code & (mask_ >> 2); }

  /// The (k-1)-length prefix of the k-mer, as a (k-1)-mer code.
  [[nodiscard]] KmerCode prefix(KmerCode code) const { return code >> 2; }

  /// Enumerates every valid k-mer of `s` in order, skipping windows that
  /// contain a non-ACGT character. Positions are window start offsets.
  struct Occurrence {
    KmerCode code;
    std::size_t position;
  };
  [[nodiscard]] std::vector<Occurrence> extract(std::string_view s) const;

  /// As extract(), but each code is canonicalized.
  [[nodiscard]] std::vector<Occurrence> extract_canonical(std::string_view s) const;

 private:
  int k_;
  KmerCode mask_;
};

}  // namespace trinity::seq
