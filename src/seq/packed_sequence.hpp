#pragma once
// PackedSequence: 2-bit-per-base nucleotide storage.
//
// The paper's conclusions name "reduction of the memory footprint of de
// novo transcriptome assembly ... as well as the per-node memory
// requirements of the MPI version of Chrysalis" as active work. Plain
// std::string spends 8 bits per base (plus allocator overhead); this
// container packs ACGT into 2 bits each — a 4x reduction on sequence
// payloads — while still supporting random access, iteration-free k-mer
// extraction, and round-tripping through the string world. Bases outside
// ACGT cannot be represented; callers normalize or reject first.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "seq/dna.hpp"
#include "seq/kmer.hpp"
#include "seq/sequence.hpp"

namespace trinity::seq {

/// An immutable-length, 2-bit packed DNA sequence.
class PackedSequence {
 public:
  PackedSequence() = default;

  /// Packs `bases`; returns std::nullopt if any base is not ACGT.
  static std::optional<PackedSequence> pack(std::string_view bases);

  /// Packs `bases`, throwing std::invalid_argument on a non-ACGT base.
  static PackedSequence pack_or_throw(std::string_view bases);

  /// Number of bases.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// 2-bit code of base `i` (no bounds check).
  [[nodiscard]] std::uint8_t code_at(std::size_t i) const {
    return static_cast<std::uint8_t>((words_[i / 32] >> (2 * (i % 32))) & 3u);
  }

  /// Character of base `i`.
  [[nodiscard]] char at(std::size_t i) const { return code_to_base(code_at(i)); }

  /// Unpacks the whole sequence.
  [[nodiscard]] std::string unpack() const;

  /// Unpacks the substring [pos, pos + len); clamps at the end.
  [[nodiscard]] std::string unpack_substr(std::size_t pos, std::size_t len) const;

  /// Extracts the k-mer starting at `pos` directly from the packed words
  /// (equivalent to KmerCodec::encode on the unpacked substring). Returns
  /// std::nullopt when pos + k exceeds the sequence.
  [[nodiscard]] std::optional<KmerCode> kmer_at(std::size_t pos, int k) const;

  /// Heap bytes used by the packed payload.
  [[nodiscard]] std::size_t memory_bytes() const {
    return words_.size() * sizeof(std::uint64_t);
  }

  friend bool operator==(const PackedSequence&, const PackedSequence&) = default;

 private:
  // Base i lives in words_[i/32], bits [2*(i%32), 2*(i%32)+2).
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

/// Packs a set of sequences, normalizing (non-ACGT -> skip record) and
/// reporting how many records were dropped.
struct PackedStore {
  std::vector<PackedSequence> sequences;
  std::vector<std::string> names;
  std::size_t dropped = 0;

  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t total = 0;
    for (const auto& s : sequences) total += s.memory_bytes();
    return total;
  }
};

/// Builds a PackedStore from FASTA-style records, dropping any record with
/// a non-ACGT base (they cannot be represented in 2 bits).
PackedStore pack_store(const std::vector<Sequence>& seqs);

}  // namespace trinity::seq
