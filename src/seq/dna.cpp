#include "seq/dna.hpp"

#include <algorithm>

namespace trinity::seq {

std::string reverse_complement(std::string_view s) {
  std::string out(s.size(), 'N');
  for (std::size_t i = 0; i < s.size(); ++i) {
    out[s.size() - 1 - i] = complement(s[i]);
  }
  return out;
}

bool is_acgt(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](char c) { return base_to_code(c) != kInvalidBase; });
}

void normalize_sequence(std::string& s) {
  for (char& c : s) {
    const std::uint8_t code = base_to_code(c);
    c = code == kInvalidBase ? 'N' : code_to_base(code);
  }
}

}  // namespace trinity::seq
