#include "seq/kmer.hpp"

#include <stdexcept>

namespace trinity::seq {

KmerCodec::KmerCodec(int k) : k_(k) {
  if (k < 1 || k > 32) throw std::invalid_argument("KmerCodec: k must be in [1, 32]");
  mask_ = k == 32 ? ~KmerCode{0} : ((KmerCode{1} << (2 * k)) - 1);
}

std::optional<KmerCode> KmerCodec::encode(std::string_view s) const {
  if (s.size() < static_cast<std::size_t>(k_)) return std::nullopt;
  KmerCode code = 0;
  for (int i = 0; i < k_; ++i) {
    const std::uint8_t b = base_to_code(s[static_cast<std::size_t>(i)]);
    if (b == kInvalidBase) return std::nullopt;
    code = (code << 2) | b;
  }
  return code;
}

std::string KmerCodec::decode(KmerCode code) const {
  std::string out(static_cast<std::size_t>(k_), 'A');
  for (int i = k_ - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = code_to_base(static_cast<std::uint8_t>(code & 3u));
    code >>= 2;
  }
  return out;
}

KmerCode KmerCodec::reverse_complement(KmerCode code) const {
  KmerCode rc = 0;
  for (int i = 0; i < k_; ++i) {
    const std::uint8_t b = static_cast<std::uint8_t>(code & 3u);
    rc = (rc << 2) | (b ^ 3u);  // complement of a 2-bit code is its bitwise NOT in 2 bits
    code >>= 2;
  }
  return rc;
}

std::vector<KmerCodec::Occurrence> KmerCodec::extract(std::string_view s) const {
  std::vector<Occurrence> out;
  if (s.size() < static_cast<std::size_t>(k_)) return out;
  out.reserve(s.size() - static_cast<std::size_t>(k_) + 1);
  KmerCode code = 0;
  int valid = 0;  // number of consecutive valid bases ending at position i
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::uint8_t b = base_to_code(s[i]);
    if (b == kInvalidBase) {
      valid = 0;
      code = 0;
      continue;
    }
    code = ((code << 2) | b) & mask_;
    if (++valid >= k_) {
      out.push_back({code, i + 1 - static_cast<std::size_t>(k_)});
    }
  }
  return out;
}

std::vector<KmerCodec::Occurrence> KmerCodec::extract_canonical(std::string_view s) const {
  auto occ = extract(s);
  for (auto& o : occ) o.code = canonical(o.code);
  return occ;
}

}  // namespace trinity::seq
