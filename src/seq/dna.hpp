#pragma once
// DNA alphabet primitives: base <-> 2-bit code mapping, complementation,
// and sequence validation. The 2-bit encoding (A=0, C=1, G=2, T=3) is the
// foundation of the packed k-mer representation in seq/kmer.hpp.

#include <cstdint>
#include <string>
#include <string_view>

namespace trinity::seq {

/// Sentinel returned by base_to_code for characters outside {A,C,G,T,a,c,g,t}.
inline constexpr std::uint8_t kInvalidBase = 0xFF;

/// Maps a nucleotide character to its 2-bit code, case-insensitively.
/// Returns kInvalidBase for anything else (including N).
constexpr std::uint8_t base_to_code(char c) {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return kInvalidBase;
  }
}

/// Maps a 2-bit code back to its uppercase nucleotide character.
/// `code` must be < 4.
constexpr char code_to_base(std::uint8_t code) {
  constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  return kBases[code & 3u];
}

/// Complement of a nucleotide character; non-ACGT characters map to 'N'.
constexpr char complement(char c) {
  switch (c) {
    case 'A': case 'a': return 'T';
    case 'C': case 'c': return 'G';
    case 'G': case 'g': return 'C';
    case 'T': case 't': return 'A';
    default: return 'N';
  }
}

/// Reverse complement of a DNA string.
std::string reverse_complement(std::string_view s);

/// True when every character of `s` is one of {A,C,G,T} (either case).
bool is_acgt(std::string_view s);

/// Uppercases a sequence in place and replaces non-ACGT characters with 'N'.
void normalize_sequence(std::string& s);

}  // namespace trinity::seq
