#pragma once
// Smith–Waterman local alignment with affine gap penalties.
//
// Section IV of the paper validates the parallel pipeline by aligning every
// reconstructed transcript against every transcript from the original run
// "using the Smith-Waterman algorithm, as implemented in the FASTA
// program", then bucketing pairs by identity and coverage (Figure 4). This
// module provides that comparator: full Gotoh dynamic programming with
// traceback statistics (identity, alignment length, query/target coverage),
// plus a banded variant for long near-identical pairs.

#include <cstdint>
#include <string_view>

namespace trinity::sw {

/// Scoring scheme; defaults approximate the FASTA program's DNA defaults.
struct Scoring {
  int match = 5;
  int mismatch = -4;
  int gap_open = -12;    ///< charged for the first base of a gap
  int gap_extend = -4;   ///< charged for each additional base
};

/// Result of a local alignment.
struct Alignment {
  int score = 0;
  std::size_t query_begin = 0;   ///< [begin, end) on the query
  std::size_t query_end = 0;
  std::size_t target_begin = 0;  ///< [begin, end) on the target
  std::size_t target_end = 0;
  std::size_t matches = 0;       ///< identical aligned columns
  std::size_t alignment_columns = 0;  ///< aligned columns incl. gaps

  /// Fraction of identical columns in the local alignment (0 when empty).
  [[nodiscard]] double identity() const {
    return alignment_columns == 0
               ? 0.0
               : static_cast<double>(matches) / static_cast<double>(alignment_columns);
  }
  /// Fraction of the query covered by the local alignment.
  [[nodiscard]] double query_coverage(std::size_t query_length) const {
    return query_length == 0
               ? 0.0
               : static_cast<double>(query_end - query_begin) / static_cast<double>(query_length);
  }
};

/// Full O(nm) Smith–Waterman–Gotoh alignment of `query` against `target`.
Alignment align(std::string_view query, std::string_view target, const Scoring& scoring = {});

/// Banded variant: only cells with |i - j| <= band are considered. Exact
/// when the optimal alignment stays within the band; much faster for long,
/// similar sequences. `band` < 0 falls back to the full algorithm.
Alignment align_banded(std::string_view query, std::string_view target, int band,
                       const Scoring& scoring = {});

/// Strand-aware best alignment: max score over query and its reverse
/// complement (transcripts from independent runs may differ in strand).
Alignment align_best_strand(std::string_view query, std::string_view target,
                            const Scoring& scoring = {});

}  // namespace trinity::sw
