#include "sw/smith_waterman.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "seq/dna.hpp"

namespace trinity::sw {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Traceback codes for the H matrix.
enum : std::uint8_t {
  kStop = 0,
  kDiag = 1,
  kFromE = 2,  // gap in query (came from the left)
  kFromF = 3,  // gap in target (came from above)
};

struct Cell {
  std::uint8_t h_src : 2;   // H source
  std::uint8_t e_ext : 1;   // E was an extension (vs fresh open)
  std::uint8_t f_ext : 1;   // F was an extension
};

Alignment align_impl(std::string_view query, std::string_view target, int band,
                     const Scoring& scoring) {
  const std::size_t n = query.size();
  const std::size_t m = target.size();
  Alignment best;
  if (n == 0 || m == 0) return best;

  // Row-linear DP with a full traceback matrix. H/E/F follow Gotoh's
  // affine-gap recurrences; all are clamped at 0 for local alignment.
  std::vector<int> h_prev(m + 1, 0);
  std::vector<int> h_curr(m + 1, 0);
  std::vector<int> e_row(m + 1, kNegInf);
  std::vector<Cell> trace((n + 1) * (m + 1), Cell{kStop, 0, 0});

  std::size_t best_i = 0;
  std::size_t best_j = 0;

  for (std::size_t i = 1; i <= n; ++i) {
    int f = kNegInf;
    h_curr[0] = 0;
    std::size_t j_lo = 1;
    std::size_t j_hi = m;
    if (band >= 0) {
      const auto b = static_cast<std::size_t>(band);
      j_lo = i > b ? i - b : 1;
      j_hi = std::min(m, i + b);
      if (j_lo > 1) h_curr[j_lo - 1] = 0;
      // No E can enter the band from its left edge.
      e_row[j_lo - 1] = kNegInf;
    }
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      Cell& cell = trace[i * (m + 1) + j];

      const int e_open = h_curr[j - 1] + scoring.gap_open;
      const int e_extend = e_row[j - 1] + scoring.gap_extend;
      const int e = std::max(e_open, e_extend);
      cell.e_ext = e_extend >= e_open ? 1 : 0;
      e_row[j] = e;

      const int f_open = h_prev[j] + scoring.gap_open;
      const int f_extend = f + scoring.gap_extend;
      f = std::max(f_open, f_extend);
      cell.f_ext = f_extend >= f_open ? 1 : 0;

      const bool is_match = query[i - 1] == target[j - 1];
      const int diag = h_prev[j - 1] + (is_match ? scoring.match : scoring.mismatch);

      int h = 0;
      std::uint8_t src = kStop;
      if (diag > h) {
        h = diag;
        src = kDiag;
      }
      if (e > h) {
        h = e;
        src = kFromE;
      }
      if (f > h) {
        h = f;
        src = kFromF;
      }
      cell.h_src = src;
      h_curr[j] = h;

      if (h > best.score) {
        best.score = h;
        best_i = i;
        best_j = j;
      }
    }
    if (band >= 0 && j_hi < m) h_curr[j_hi + 1] = 0;
    std::swap(h_prev, h_curr);
  }

  if (best.score <= 0) return Alignment{};

  // Traceback from the best cell. E/F runs are unwound with their
  // extension bits; columns and matches accumulate as we go.
  std::size_t i = best_i;
  std::size_t j = best_j;
  best.query_end = best_i;
  best.target_end = best_j;
  enum class State { H, E, F };
  State state = State::H;
  for (;;) {
    const Cell cell = trace[i * (m + 1) + j];
    if (state == State::H) {
      if (cell.h_src == kStop) break;
      if (cell.h_src == kDiag) {
        ++best.alignment_columns;
        if (query[i - 1] == target[j - 1]) ++best.matches;
        --i;
        --j;
      } else if (cell.h_src == kFromE) {
        state = State::E;
      } else {
        state = State::F;
      }
    } else if (state == State::E) {
      ++best.alignment_columns;
      const bool extended = cell.e_ext != 0;
      --j;
      state = extended ? State::E : State::H;
    } else {
      ++best.alignment_columns;
      const bool extended = cell.f_ext != 0;
      --i;
      state = extended ? State::F : State::H;
    }
  }
  best.query_begin = i;
  best.target_begin = j;
  return best;
}

}  // namespace

Alignment align(std::string_view query, std::string_view target, const Scoring& scoring) {
  return align_impl(query, target, -1, scoring);
}

Alignment align_banded(std::string_view query, std::string_view target, int band,
                       const Scoring& scoring) {
  return align_impl(query, target, band, scoring);
}

Alignment align_best_strand(std::string_view query, std::string_view target,
                            const Scoring& scoring) {
  const Alignment fwd = align(query, target, scoring);
  const std::string rc = seq::reverse_complement(query);
  const Alignment rev = align(rc, target, scoring);
  return fwd.score >= rev.score ? fwd : rev;
}

}  // namespace trinity::sw
