// Figure 11 — "Parallel Trinity run using 16 nodes, each with 16 cores and
// 128 GB of memory."
//
// The parallel counterpart of Figure 2: the same workload through the
// hybrid pipeline on 16 simulated nodes. Paper shape: "substantially lower
// time taken in the Chrysalis workflow" than Figure 2 — the abstract's
// >50 h -> <5 h reduction. The comparison metric here is the modeled
// Chrysalis time (per-rank CPU / modeled threads + comm), printed against
// the 1-node configuration.

#include "bench_common.hpp"
#include "pipeline/trinity_pipeline.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_fig11_parallel_trace", "Figure 11: parallel Trinity trace on simulated nodes");
  cfg.flag_int("genes", 300, "genes to simulate (scales the dataset)");
  cfg.flag_int("ranks", 16, "rank count for the measured world(s)");
  cfg.flag_int("bowtie-repeats", 85, "Bowtie kernel repeats (cost-model calibration)");
  cfg.flag_int("gff-repeats", 400, "GraphFromFasta kernel repeats (cost-model calibration)");
  cfg.flag_int("r2t-repeats", 60, "ReadsToTranscripts kernel repeats (cost-model calibration)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int nranks = static_cast<int>(cfg.get_int("ranks"));

  bench::banner("Figure 11", "parallel Trinity trace on simulated nodes");

  auto preset = sim::preset("sugarbeet_like");
  preset.transcriptome.num_genes = genes;
  const auto data = sim::simulate_dataset(preset);
  std::printf("workload: %zu reference isoforms, %zu reads\n\n",
              data.transcriptome.transcripts.size(), data.reads.reads.size());

  auto run_with = [&](int ranks, const char* dir, bool traced) {
    pipeline::PipelineOptions options;
    options.k = bench::kK;
    options.nranks = ranks;
    options.work_dir = dir;
    // Same kernel calibration as the Figure 2 bench, so the two traces
    // are directly comparable.
    options.model_threads_per_rank = 1;  // node-count scaling, as in Figs 7-9
    options.bowtie_kernel_repeats = static_cast<int>(cfg.get_int("bowtie-repeats"));
    options.gff_kernel_repeats = static_cast<int>(cfg.get_int("gff-repeats"));
    options.r2t_kernel_repeats = static_cast<int>(cfg.get_int("r2t-repeats"));
    // The per-rank/per-thread timeline behind this figure, as an artifact:
    // the hybrid run emits a Chrome trace next to its run report.
    if (traced) options.trace_path = "trace.json";
    return pipeline::run_pipeline(data.reads.reads, options);
  };

  const auto original = run_with(1, "/tmp/trinity_bench_fig11_orig", false);
  const auto parallel = run_with(nranks, "/tmp/trinity_bench_fig11_par", true);

  std::printf("%-34s %10s %10s %14s\n", "stage (hybrid run)", "wall(s)", "cpu(s)",
              "rss_peak(MB)");
  for (const auto& phase : parallel.trace) {
    std::printf("%-34s %10.2f %10.2f %14.1f\n", phase.name.c_str(), phase.wall_seconds,
                phase.cpu_seconds, static_cast<double>(phase.rss_peak) / (1024.0 * 1024.0));
  }

  // Per-stage communication and imbalance of the hybrid run, from the
  // pipeline's own observability layer (same data as run_report.json).
  bench::JsonSink json(cfg, "fig11_parallel_trace");
  std::printf("\n%-34s %10s %10s %6s\n", "hybrid stage comm", "sent(B)", "recv(B)", "skew");
  for (const auto& stage : parallel.stage_comm) {
    const auto comm = bench::summarize_comm(stage.ranks);
    std::printf("%-34s %10llu %10llu %6.2f\n", stage.stage.c_str(),
                static_cast<unsigned long long>(comm.bytes_sent),
                static_cast<unsigned long long>(comm.bytes_received), comm.skew);
    json.begin_entry();
    json.field("stage", stage.stage);
    json.field("nodes", static_cast<std::int64_t>(nranks));
    json.field("comm_bytes_sent", static_cast<std::int64_t>(comm.bytes_sent));
    json.field("comm_bytes_received", static_cast<std::int64_t>(comm.bytes_received));
    json.field("comm_wait_s", comm.wait_seconds);
    json.field("skew_ratio", comm.skew);
  }
  if (!parallel.report_path.empty()) {
    std::printf("full run report: %s\n", parallel.report_path.c_str());
  }
  if (!parallel.trace_file.empty()) {
    std::printf("chrome trace:    %s  (Perfetto / trinity_trace)\n",
                parallel.trace_file.c_str());
  }

  const double before = original.chrysalis_virtual_seconds();
  const double after = parallel.chrysalis_virtual_seconds();
  std::printf("\nmodeled Chrysalis time: 1 node %.2f s -> %d nodes %.2f s (%.1fx)\n", before,
              nranks, after, before / after);
  std::printf("paper: Chrysalis drops from >50 h to <5 h on the same dataset (>10x),\n"
              "with the rest of the workflow unchanged.\n");
  std::printf("outputs: original %zu transcripts, parallel %zu transcripts (equal quality\n"
              "is validated by Figure 4/5/6 benches).\n",
              original.transcripts.size(), parallel.transcripts.size());
  return 0;
}
