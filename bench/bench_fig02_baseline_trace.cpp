// Figure 2 — "Measurement of RAM usage (Y-axis) and the runtime (X-axis)
// of Trinity workflow run using single node of 16 cores and 256 GB of
// memory for the sugarbeet dataset."
//
// Paper shape: the whole original pipeline takes ~60 h; Chrysalis is the
// most time-intensive phase (>50 h of it), with Jellyfish/Inchworm the
// memory-heavy early phases. This bench runs the original (OpenMP-only)
// pipeline on the sugarbeet_like workload and prints the Collectl-style
// trace: per stage wall time, CPU time, and RSS.

#include "bench_common.hpp"
#include "pipeline/trinity_pipeline.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_fig02_baseline_trace", "Figure 2: original (OpenMP-only) Trinity trace: runtime vs RAM");
  cfg.flag_int("genes", 300, "genes to simulate (scales the dataset)");
  cfg.flag_int("bowtie-repeats", 85, "Bowtie kernel repeats (cost-model calibration)");
  cfg.flag_int("gff-repeats", 400, "GraphFromFasta kernel repeats (cost-model calibration)");
  cfg.flag_int("r2t-repeats", 60, "ReadsToTranscripts kernel repeats (cost-model calibration)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));

  bench::banner("Figure 2", "original (OpenMP-only) Trinity trace: runtime vs RAM");

  auto preset = sim::preset("sugarbeet_like");
  preset.transcriptome.num_genes = genes;
  const auto data = sim::simulate_dataset(preset);
  std::printf("workload: %zu reference isoforms, %zu reads\n\n",
              data.transcriptome.transcripts.size(), data.reads.reads.size());

  pipeline::PipelineOptions options;
  options.k = bench::kK;
  options.nranks = 1;  // the original shared-memory configuration
  options.work_dir = "/tmp/trinity_bench_fig02";
  // Calibrated per-item kernel repeats (see PipelineOptions): the
  // production Bowtie/GraphFromFasta/ReadsToTranscripts are far heavier
  // per item than this reproduction's kernels; without this the cheap
  // kernels would hide the paper's defining shape (Chrysalis >> rest).
  options.model_threads_per_rank = 1;  // node-count scaling, as in Figs 7-9
  options.bowtie_kernel_repeats = static_cast<int>(cfg.get_int("bowtie-repeats"));
  options.gff_kernel_repeats = static_cast<int>(cfg.get_int("gff-repeats"));
  options.r2t_kernel_repeats = static_cast<int>(cfg.get_int("r2t-repeats"));
  const auto result = pipeline::run_pipeline(data.reads.reads, options);

  std::printf("%-34s %10s %10s %10s %14s\n", "stage", "start(s)", "wall(s)", "cpu(s)",
              "rss_peak(MB)");
  double chrysalis_wall = 0.0;
  double total_wall = 0.0;
  for (const auto& phase : result.trace) {
    std::printf("%-34s %10.2f %10.2f %10.2f %14.1f\n", phase.name.c_str(),
                phase.start_seconds, phase.wall_seconds, phase.cpu_seconds,
                static_cast<double>(phase.rss_peak) / (1024.0 * 1024.0));
    total_wall += phase.wall_seconds;
    if (phase.name.rfind("chrysalis", 0) == 0) chrysalis_wall += phase.wall_seconds;
  }
  std::printf("\nChrysalis share of the pipeline: %.0f%% of wall time (paper: Chrysalis\n"
              "is the dominant phase, >50 h of the ~60 h single-node run).\n",
              100.0 * chrysalis_wall / total_wall);
  std::printf("assembled %zu transcripts in %zu components.\n", result.transcripts.size(),
              result.components.num_components());
  return 0;
}
