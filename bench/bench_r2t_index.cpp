// Microbenchmark behind the quasi-mapping tentpole: the persistent
// TranscriptIndex vs the per-run k-mer -> bundle voting map on the fig09
// workload. Three setup costs are measured (host wall time, best of
// --repeats): the voting map built from scratch (what every vote-mode run
// pays), a cold index build (+ serialize to disk), and a warm mmap load of
// the serialized index (what every later index-mode run pays instead).
//
// The gate is the warm path: --min-speedup (default 1.0) fails the binary
// unless vote_setup / warm_load reaches the threshold — the point of
// persisting the index is that repeat runs skip the setup region entirely.
// Assignment parity is asserted first (run_shared in vote mode vs a warm
// index-mode run over the same reads must agree byte-for-byte, and the
// warm run must report index_source "mmap" with a zero build time), so the
// speedup can never come from computing something different.
//
// By default the series is written to BENCH_r2t_index.json in the working
// directory ({"bench":"r2t_index","series":[...]}), the scripts/check.sh
// perf-gate artifact.

#include <chrono>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "chrysalis/transcript_index.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool same_assignments(const std::vector<trinity::chrysalis::ReadAssignment>& a,
                      const std::vector<trinity::chrysalis::ReadAssignment>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(),
                      a.size() * sizeof(trinity::chrysalis::ReadAssignment)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("bench_r2t_index",
             "persistent quasi-mapping TranscriptIndex vs per-run voting-map setup");
  cfg.flag_int("genes", 400, "genes to simulate (scales the dataset)")
      .flag_int("repeats", 5, "timed repetitions per setup path (minimum kept)")
      .flag_double("min-speedup", 1.0,
                   "fail (exit 1) unless vote_setup / warm_mmap_load reaches this; "
                   "0 disables the gate")
      .flag_string("csv", "", "also write the measured series as CSV to this path")
      .flag_string("json", "BENCH_r2t_index.json",
                   "write the series as one JSON document to this path");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;

  bench::banner("r2t-index", "persistent TranscriptIndex vs per-run voting-map setup");
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int repeats = static_cast<int>(cfg.get_int("repeats"));
  const auto w = bench::make_workload("sugarbeet_like", genes, "r2t_index");
  bench::describe(w);

  chrysalis::GraphFromFastaOptions gff;
  gff.k = bench::kK;
  const auto components = chrysalis::run_shared(w.contigs, w.counter, gff).components;
  const std::string index_path = w.work_dir + "/transcript_index.bin";

  // --- setup-cost passes (best of N) ---------------------------------------
  double t_vote_setup = 0.0, t_build = 0.0, t_load = 0.0;
  std::size_t map_entries = 0, index_entries = 0, index_intervals = 0, image_bytes = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    double t0 = now_seconds();
    const auto map = chrysalis::build_bundle_kmer_map(w.contigs, components, bench::kK);
    const double vote = now_seconds() - t0;
    map_entries = map.size();

    t0 = now_seconds();
    const auto built = chrysalis::TranscriptIndex::build(w.contigs, components, bench::kK);
    built.save(index_path);
    const double build = now_seconds() - t0;

    t0 = now_seconds();
    const auto loaded = chrysalis::TranscriptIndex::load(index_path);
    const double load = now_seconds() - t0;
    index_entries = loaded.num_kmers();
    index_intervals = loaded.num_intervals();
    image_bytes = loaded.image_bytes();

    if (rep == 0 || vote < t_vote_setup) t_vote_setup = vote;
    if (rep == 0 || build < t_build) t_build = build;
    if (rep == 0 || load < t_load) t_load = load;
  }
  if (index_entries != map_entries) {
    std::fprintf(stderr, "bench_r2t_index: index holds %zu k-mers, voting map %zu\n",
                 index_entries, map_entries);
    return 1;
  }

  // --- end-to-end parity: vote mode vs a warm index-mode run ---------------
  chrysalis::ReadsToTranscriptsOptions options;
  options.k = bench::kK;
  options.max_mem_reads = 20000;
  const auto vote_run =
      chrysalis::run_shared(w.contigs, components, w.reads_path, options);
  options.mode = chrysalis::R2TMode::kIndex;
  options.index_path = index_path;  // present on disk: kAuto warm-loads it
  const auto index_run =
      chrysalis::run_shared(w.contigs, components, w.reads_path, options, w.work_dir);
  if (!same_assignments(vote_run.assignments, index_run.assignments)) {
    std::fprintf(stderr, "bench_r2t_index: index mode changed the assignments\n");
    return 1;
  }
  if (index_run.timing.index_source != "mmap" ||
      index_run.timing.index_build_seconds != 0.0) {
    std::fprintf(stderr,
                 "bench_r2t_index: warm run did not mmap-load (source '%s', build %.3fs)\n",
                 index_run.timing.index_source.c_str(),
                 index_run.timing.index_build_seconds);
    return 1;
  }
  std::uint64_t classified = 0;
  for (const auto& eq : index_run.eq_classes) classified += eq.count;
  std::uint64_t assigned = 0;
  for (const auto& a : index_run.assignments) assigned += a.component >= 0 ? 1 : 0;
  if (classified != assigned) {
    std::fprintf(stderr,
                 "bench_r2t_index: eq classes count %llu reads, assignments %llu\n",
                 static_cast<unsigned long long>(classified),
                 static_cast<unsigned long long>(assigned));
    return 1;
  }

  const double cold_speedup = t_vote_setup / std::max(t_build, 1e-9);
  const double warm_speedup = t_vote_setup / std::max(t_load, 1e-9);

  bench::CsvSink csv(cfg, "path,setup_s,entries,speedup_vs_vote");
  bench::JsonSink json(cfg, "r2t_index");
  std::printf("%12s | %10s | %10s | %10s\n", "path", "setup(s)", "entries", "vs vote");
  struct Row {
    const char* path;
    double seconds;
    double speedup;
  };
  for (const Row& row : {Row{"vote_setup", t_vote_setup, 1.0},
                         Row{"index_build", t_build, cold_speedup},
                         Row{"mmap_load", t_load, warm_speedup}}) {
    std::printf("%12s | %10.4f | %10zu | %9.2fx\n", row.path, row.seconds, index_entries,
                row.speedup);
    csv.row(row.path, row.seconds, index_entries, row.speedup);
    json.begin_entry();
    json.field("path", std::string(row.path));
    json.field("setup_s", row.seconds);
    json.field("entries", static_cast<std::int64_t>(index_entries));
    json.field("intervals", static_cast<std::int64_t>(index_intervals));
    json.field("image_bytes", static_cast<std::int64_t>(image_bytes));
    json.field("speedup_vs_vote", row.speedup);
    json.field("eq_classes", static_cast<std::int64_t>(index_run.eq_classes.size()));
  }
  std::printf("\nvote setup %.4fs | cold build+save %.4fs (%.2fx) | warm mmap load %.4fs "
              "(%.2fx); %zu k-mers in %zu path intervals, %.1f MiB on disk\n",
              t_vote_setup, t_build, cold_speedup, t_load, warm_speedup, index_entries,
              index_intervals, static_cast<double>(image_bytes) / (1024.0 * 1024.0));

  const double min_speedup = cfg.get_double("min-speedup");
  if (min_speedup > 0.0 && warm_speedup < min_speedup) {
    std::fprintf(stderr,
                 "bench_r2t_index: warm-load speedup %.2fx is below --min-speedup %.2f\n",
                 warm_speedup, min_speedup);
    return 1;
  }
  return 0;
}
