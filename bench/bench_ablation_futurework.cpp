// Ablation — the paper's Section VI future-work directions, implemented
// and measured against the published design:
//
//  1. "a dynamic partitioning strategy to reduce this load imbalance":
//     self-scheduling via an RMA work counter vs chunked round-robin.
//  2. "parallelizing other parts of GraphFromFasta": cooperative
//     (block-partitioned + Allgatherv-pooled) setup vs the redundant
//     per-rank scan.
//  3. "exploring MPI-I/O for RNA-Seq data": collective ordered write of
//     the ReadsToTranscripts output vs per-rank files + master cat.
//  4. The read-split alternative of Bozdag et al. (the paper's Bowtie
//     partitioning is "a special case of their more general study"):
//     split reads + replicate index vs split targets + PyFasta.

#include "align/mpi_bowtie.hpp"
#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "simpi/context.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_ablation_futurework", "Ablation (future work): Section VI directions vs the published design");
  cfg.flag_int("genes", 400, "genes to simulate (scales the dataset)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));

  bench::banner("Ablation (future work)", "Section VI directions vs the published design");
  const auto w = bench::make_workload("sugarbeet_like", genes, "futurework");
  bench::describe(w);

  // --- 1: dynamic self-scheduling vs chunked round-robin ---------------------
  std::printf("1) GraphFromFasta loop distribution (80 kernel repeats):\n");
  std::printf("%6s | %-18s %11s %11s %9s %9s\n", "nodes", "strategy", "loops_max",
              "loops_min", "max/min", "comm(s)");
  for (const int nranks : {4, 8, 16}) {
    for (const auto dist :
         {chrysalis::Distribution::kChunkedRoundRobin, chrysalis::Distribution::kDynamic}) {
      chrysalis::GraphFromFastaOptions options;
      options.k = bench::kK;
      options.kernel_repeats = 80;
      options.model_threads_per_rank = 1;
      options.distribution = dist;
      chrysalis::GffTiming timing;
      simpi::run(nranks, [&](simpi::Context& ctx) {
        const auto r = chrysalis::run_hybrid(ctx, w.contigs, w.counter, options);
        if (ctx.rank() == 0) timing = r.timing;
      });
      const double max_t = timing.loop1.max() + timing.loop2.max();
      const double min_t = timing.loop1.min() + timing.loop2.min();
      std::printf("%6d | %-18s %11.3f %11.3f %9.2f %9.4f\n", nranks,
                  dist == chrysalis::Distribution::kDynamic ? "dynamic (future)"
                                                            : "chunked-rr (paper)",
                  max_t, min_t, min_t > 0 ? max_t / min_t : 0.0, timing.comm_seconds);
    }
  }

  // --- 2: cooperative vs redundant setup ---------------------------------------
  std::printf("\n2) GraphFromFasta setup (the serial region of Figure 8):\n");
  std::printf("%6s | %-20s %11s %9s\n", "nodes", "setup scheme", "setup(s)", "comm(s)");
  for (const int nranks : {4, 8, 16}) {
    for (const bool hybrid_setup : {false, true}) {
      chrysalis::GraphFromFastaOptions options;
      options.k = bench::kK;
      options.model_threads_per_rank = 1;
      options.hybrid_setup = hybrid_setup;
      chrysalis::GffTiming timing;
      simpi::run(nranks, [&](simpi::Context& ctx) {
        const auto r = chrysalis::run_hybrid(ctx, w.contigs, w.counter, options);
        if (ctx.rank() == 0) timing = r.timing;
      });
      std::printf("%6d | %-20s %11.3f %9.4f\n", nranks,
                  hybrid_setup ? "cooperative (future)" : "redundant (paper)",
                  timing.setup_seconds, timing.comm_seconds);
    }
  }

  // --- 3: collective output vs per-rank files + cat -----------------------------
  chrysalis::GraphFromFastaOptions gff;
  gff.k = bench::kK;
  const auto components = chrysalis::run_shared(w.contigs, w.counter, gff).components;
  std::printf("\n3) ReadsToTranscripts output path:\n");
  std::printf("%6s | %-22s %12s\n", "nodes", "output scheme", "finalize(s)");
  for (const int nranks : {4, 8, 16}) {
    for (const auto mode :
         {chrysalis::R2TOutputMode::kPerRankConcat, chrysalis::R2TOutputMode::kCollective}) {
      chrysalis::ReadsToTranscriptsOptions options;
      options.k = bench::kK;
      options.max_mem_reads = 20000;
      options.model_threads_per_rank = 1;
      options.output_mode = mode;
      chrysalis::R2TTiming timing;
      simpi::run(nranks, [&](simpi::Context& ctx) {
        const auto r = chrysalis::run_hybrid(ctx, w.contigs, components, w.reads_path,
                                             options, w.work_dir);
        if (ctx.rank() == 0) timing = r.timing;
      });
      std::printf("%6d | %-22s %12.4f\n", nranks,
                  mode == chrysalis::R2TOutputMode::kCollective ? "collective (MPI-I/O)"
                                                                : "per-rank + cat (paper)",
                  timing.concat_seconds);
    }
  }

  // --- 4: target-split vs read-split Bowtie --------------------------------------
  std::printf("\n4) Distributed Bowtie partitioning:\n");
  std::printf("%6s | %-22s %11s %11s %9s\n", "nodes", "split", "align_max", "align_min",
              "total(s)");
  align::AlignerOptions aopt;
  aopt.model_threads_per_rank = 1;
  const double pyfasta_model = static_cast<double>(seq::total_bases(w.contigs)) / 1.0e6;
  for (const int nranks : {4, 8, 16}) {
    for (const auto split : {align::BowtieSplit::kTargets, align::BowtieSplit::kReads}) {
      align::DistributedBowtieTiming timing;
      simpi::run(nranks, [&](simpi::Context& ctx) {
        const auto r =
            align::distributed_bowtie(ctx, w.contigs, w.dataset.reads.reads, aopt, split);
        if (ctx.rank() == 0) timing = r.timing;
      });
      const double split_cost =
          split == align::BowtieSplit::kTargets ? pyfasta_model : 0.0;
      std::printf("%6d | %-22s %11.3f %11.3f %9.3f\n", nranks,
                  split == align::BowtieSplit::kReads ? "reads (Bozdag-style)"
                                                      : "targets + PyFasta",
                  timing.align_seconds_max, timing.align_seconds_min,
                  split_cost + timing.align_seconds_max + timing.merge_seconds);
    }
  }

  std::printf("\nexpected shapes: dynamic narrows the max/min gap at a small RMA cost;\n"
              "cooperative setup turns the constant serial region into a shrinking one\n"
              "plus communication; collective output removes the cat step; read-split\n"
              "avoids the PyFasta overhead but pays the replicated index build.\n");
  return 0;
}
