// Figure 7 — "Results of parallel (MPI+OpenMP) GraphFromFasta
// implementation showing the time taken in the loops and the total time
// taken in GraphFromFasta with increasing number of nodes."
//
// Paper series: loop 1 and loop 2 times (lowest and highest rank, as a
// measure of load imbalance) plus the total GraphFromFasta time, for
// 16..192 nodes of 16 threads. Here: simpi ranks 1..24, 16 modeled threads
// per rank, on the sugarbeet_like workload. Expected shape (paper §V.A):
// both loops speed up with rank count; loop 2 suffers visible max/min
// imbalance at high rank counts; total time speeds up less than the loops
// because the non-parallel regions grow in share (Figure 8).
//
// Each rank count is measured once per ShardingStrategy — pooled (blocking
// weld Allgatherv), overlap (nonblocking, loop-2 extraction hidden behind
// it), and owner (alltoallv weld routing + distributed union-find) — and
// all modes must produce identical components (asserted; exit 1 on
// mismatch). The JSON series carries every mode with the Allgatherv and
// Alltoallv waits and the overlap counters, so both the overlap's wait
// reduction and the owner mode's traffic reduction are directly diffable.

#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "simpi/context.hpp"

namespace {

/// Sum of the per-rank wall time blocked in a collective's waits.
double op_wait(const std::vector<trinity::simpi::RankResult>& ranks,
               trinity::simpi::CommOp op) {
  double total = 0.0;
  for (const auto& r : ranks) total += r.comm.of(op).wait_seconds;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_fig07_gff_scaling", "Figure 7: hybrid GraphFromFasta scaling (sugarbeet workload)");
  cfg.flag_int("genes", 400, "genes to simulate (scales the dataset)");
  cfg.flag_int("kernel-repeats", 100, "per-item kernel repeats (cost-model calibration)");
  cfg.flag_int("trials", 2, "trials per configuration (minimum kept)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int repeats = static_cast<int>(cfg.get_int("kernel-repeats"));

  bench::banner("Figure 7", "hybrid GraphFromFasta scaling (sugarbeet workload)");
  const auto w = bench::make_workload("sugarbeet_like", genes, "fig07");
  bench::describe(w);

  chrysalis::GraphFromFastaOptions options;
  options.k = bench::kK;
  options.kernel_repeats = repeats;
  // Pure node-count scaling: one modeled thread per rank keeps the
  // loop-to-serial time ratio consistent (the serial regions are not
  // divided by a thread count either).
  options.model_threads_per_rank = 1;

  bench::CsvSink csv(
      cfg,
      "nodes,sharding,loop1_max,loop1_min,loop2_max,loop2_min,total,speedup,"
      "comm_bytes,allgatherv_wait,alltoallv_wait,skew");
  bench::JsonSink json(cfg, "fig07_gff_scaling");
  std::printf("%6s %8s | %11s %11s | %11s %11s | %11s | %8s | %10s %9s %6s\n", "nodes",
              "sharding", "loop1_max", "loop1_min", "loop2_max", "loop2_min", "total(s)",
              "speedup", "comm(B)", "ag_wait", "skew");
  const int trials = static_cast<int>(cfg.get_int("trials"));
  double base_total = 0.0;
  for (const int nranks : {1, 2, 4, 8, 16, 24}) {
    std::vector<std::int32_t> reference_components;  // from the pooled run
    for (const auto sharding :
         {chrysalis::ShardingStrategy::kPooled, chrysalis::ShardingStrategy::kPooledOverlap,
          chrysalis::ShardingStrategy::kOwner}) {
      options.sharding = sharding;
      const char* mode = chrysalis::to_string(sharding);
      // Best of N trials: rank threads oversubscribe the 2-core host, and a
      // descheduled thread's CPU clock picks up scheduler noise; the minimum
      // is the least-contaminated measurement.
      chrysalis::GffTiming timing;
      bench::CommSummary comm;
      double ag_wait = 0.0;
      double a2a_wait = 0.0;
      std::vector<std::int32_t> components;
      for (int trial = 0; trial < trials; ++trial) {
        chrysalis::GffTiming t;
        std::vector<std::int32_t> c;
        const auto ranks = simpi::run(nranks, [&](simpi::Context& ctx) {
          const auto r = chrysalis::run_hybrid(ctx, w.contigs, w.counter, options);
          if (ctx.rank() == 0) {
            t = r.timing;
            c = r.components.component_of;
          }
        });
        if (trial == 0 || t.total_seconds() < timing.total_seconds()) {
          timing = t;
          comm = bench::summarize_comm(ranks);
          ag_wait = op_wait(ranks, simpi::CommOp::kAllgatherv);
          a2a_wait = op_wait(ranks, simpi::CommOp::kAlltoallv);
        }
        components = std::move(c);
      }
      // Neither overlapping the weld pooling nor owner-sharding it may
      // change the clustering: every mode is asserted bit-identical on the
      // contig -> component table.
      if (sharding == chrysalis::ShardingStrategy::kPooled) {
        reference_components = components;
      } else if (components != reference_components) {
        std::fprintf(stderr,
                     "bench_fig07: sharding=%s changed the components at %d ranks\n",
                     mode, nranks);
        return 1;
      }
      if (nranks == 1 && sharding == chrysalis::ShardingStrategy::kPooled) {
        base_total = timing.total_seconds();
      }
      std::printf(
          "%6d %8s | %11.3f %11.3f | %11.3f %11.3f | %11.3f | %7.2fx | %10llu %9.3f %6.2f\n",
          nranks, mode, timing.loop1.max(), timing.loop1.min(), timing.loop2.max(),
          timing.loop2.min(), timing.total_seconds(), base_total / timing.total_seconds(),
          static_cast<unsigned long long>(comm.bytes_received), ag_wait, comm.skew);
      csv.row(nranks, mode, timing.loop1.max(), timing.loop1.min(), timing.loop2.max(),
              timing.loop2.min(), timing.total_seconds(),
              base_total / timing.total_seconds(), comm.bytes_received, ag_wait, a2a_wait,
              comm.skew);
      json.begin_entry();
      json.field("nodes", static_cast<std::int64_t>(nranks));
      json.field("sharding", std::string(mode));
      json.field("loop1_max", timing.loop1.max());
      json.field("loop1_min", timing.loop1.min());
      json.field("loop2_max", timing.loop2.max());
      json.field("loop2_min", timing.loop2.min());
      json.field("total_s", timing.total_seconds());
      json.field("speedup", base_total / timing.total_seconds());
      json.field("comm_bytes_sent", static_cast<std::int64_t>(comm.bytes_sent));
      json.field("comm_bytes_received", static_cast<std::int64_t>(comm.bytes_received));
      json.field("comm_wait_s", comm.wait_seconds);
      json.field("allgatherv_wait_s", ag_wait);
      json.field("alltoallv_wait_s", a2a_wait);
      json.field("overlap_compute_s", timing.overlap_compute_seconds);
      json.field("pool_wait_s", timing.pool_wait_seconds);
      json.field("skew_ratio", comm.skew);
      json.field("weld_bytes_pooled", static_cast<std::int64_t>(timing.weld_bytes_pooled));
      json.field("weld_bytes_routed", static_cast<std::int64_t>(timing.weld_bytes_routed));
      json.field("match_bytes_pooled", static_cast<std::int64_t>(timing.match_bytes_pooled));
    }
  }
  std::printf("\npaper: loops speed up ~8-12x over the node range; total GraphFromFasta\n"
              "4.5x@16 -> 20.7x@192 nodes vs the 1-node OpenMP baseline; load imbalance\n"
              "(max vs min rank) grows with node count, worst in loop 2. sharding=overlap\n"
              "hides loop-2 extraction behind the weld Allgatherv; sharding=owner routes\n"
              "welds point-to-point instead of pooling (identical output either way).\n");
  return 0;
}
