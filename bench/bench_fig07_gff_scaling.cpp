// Figure 7 — "Results of parallel (MPI+OpenMP) GraphFromFasta
// implementation showing the time taken in the loops and the total time
// taken in GraphFromFasta with increasing number of nodes."
//
// Paper series: loop 1 and loop 2 times (lowest and highest rank, as a
// measure of load imbalance) plus the total GraphFromFasta time, for
// 16..192 nodes of 16 threads. Here: simpi ranks 1..24, 16 modeled threads
// per rank, on the sugarbeet_like workload. Expected shape (paper §V.A):
// both loops speed up with rank count; loop 2 suffers visible max/min
// imbalance at high rank counts; total time speeds up less than the loops
// because the non-parallel regions grow in share (Figure 8).

#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "simpi/context.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  const auto args = util::CliArgs::parse(argc, argv);
  const auto genes = static_cast<std::size_t>(args.get_int("genes", 400));
  const int repeats = static_cast<int>(args.get_int("kernel-repeats", 100));

  bench::banner("Figure 7", "hybrid GraphFromFasta scaling (sugarbeet workload)");
  const auto w = bench::make_workload("sugarbeet_like", genes, "fig07");
  bench::describe(w);

  chrysalis::GraphFromFastaOptions options;
  options.k = bench::kK;
  options.kernel_repeats = repeats;
  // Pure node-count scaling: one modeled thread per rank keeps the
  // loop-to-serial time ratio consistent (the serial regions are not
  // divided by a thread count either).
  options.model_threads_per_rank = 1;

  bench::CsvSink csv(
      args, "nodes,loop1_max,loop1_min,loop2_max,loop2_min,total,speedup,comm_bytes,skew");
  bench::JsonSink json(args, "fig07_gff_scaling");
  std::printf("%6s | %11s %11s | %11s %11s | %11s | %8s | %10s %6s\n", "nodes", "loop1_max",
              "loop1_min", "loop2_max", "loop2_min", "total(s)", "speedup", "comm(B)", "skew");
  const int trials = static_cast<int>(args.get_int("trials", 2));
  double base_total = 0.0;
  for (const int nranks : {1, 2, 4, 8, 16, 24}) {
    // Best of N trials: rank threads oversubscribe the 2-core host, and a
    // descheduled thread's CPU clock picks up scheduler noise; the minimum
    // is the least-contaminated measurement.
    chrysalis::GffTiming timing;
    bench::CommSummary comm;
    for (int trial = 0; trial < trials; ++trial) {
      chrysalis::GffTiming t;
      const auto ranks = simpi::run(nranks, [&](simpi::Context& ctx) {
        const auto r = chrysalis::run_hybrid(ctx, w.contigs, w.counter, options);
        if (ctx.rank() == 0) t = r.timing;
      });
      if (trial == 0 || t.total_seconds() < timing.total_seconds()) {
        timing = t;
        comm = bench::summarize_comm(ranks);
      }
    }
    if (nranks == 1) base_total = timing.total_seconds();
    std::printf("%6d | %11.3f %11.3f | %11.3f %11.3f | %11.3f | %7.2fx | %10llu %6.2f\n",
                nranks, timing.loop1.max(), timing.loop1.min(), timing.loop2.max(),
                timing.loop2.min(), timing.total_seconds(),
                base_total / timing.total_seconds(),
                static_cast<unsigned long long>(comm.bytes_received), comm.skew);
    csv.row(nranks, timing.loop1.max(), timing.loop1.min(), timing.loop2.max(),
            timing.loop2.min(), timing.total_seconds(), base_total / timing.total_seconds(),
            comm.bytes_received, comm.skew);
    json.begin_entry();
    json.field("nodes", static_cast<std::int64_t>(nranks));
    json.field("loop1_max", timing.loop1.max());
    json.field("loop1_min", timing.loop1.min());
    json.field("loop2_max", timing.loop2.max());
    json.field("loop2_min", timing.loop2.min());
    json.field("total_s", timing.total_seconds());
    json.field("speedup", base_total / timing.total_seconds());
    json.field("comm_bytes_sent", static_cast<std::int64_t>(comm.bytes_sent));
    json.field("comm_bytes_received", static_cast<std::int64_t>(comm.bytes_received));
    json.field("comm_wait_s", comm.wait_seconds);
    json.field("skew_ratio", comm.skew);
    json.field("weld_bytes_pooled", static_cast<std::int64_t>(timing.weld_bytes_pooled));
    json.field("match_bytes_pooled", static_cast<std::int64_t>(timing.match_bytes_pooled));
  }
  std::printf("\npaper: loops speed up ~8-12x over the node range; total GraphFromFasta\n"
              "4.5x@16 -> 20.7x@192 nodes vs the 1-node OpenMP baseline; load imbalance\n"
              "(max vs min rank) grows with node count, worst in loop 2.\n");
  return 0;
}
