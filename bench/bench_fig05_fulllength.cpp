// Figure 5 — "Alignment of reconstructed transcripts from both versions of
// Trinity to the reference transcripts; number of fully reconstructed
// genes/isoforms in full-length for Schizophrenia (a, c) and Drosophila
// (b, d) datasets among the reference transcripts."
//
// Paper method (§IV test 2): align each run's transcripts against a
// reference set; count (a/b) genes with >= 1 full-length reconstructed
// isoform and (c/d) reference isoforms recovered full-length, for repeated
// runs of the original and hybrid versions. Expected shape: the two
// versions' counts overlap — no significant difference.

#include "bench_common.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "util/stats.hpp"
#include "validate/validate.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_fig05_fulllength", "Figure 5: full-length reconstructed genes/isoforms vs reference");
  cfg.flag_int("runs", 3, "repeated runs per pipeline version");
  cfg.flag_int("ranks", 8, "rank count for the measured world(s)");
  cfg.flag_int("genes", static_cast<std::int64_t>(60), "genes to simulate (scales the dataset)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const int runs = static_cast<int>(cfg.get_int("runs"));
  const int nranks = static_cast<int>(cfg.get_int("ranks"));

  bench::banner("Figure 5", "full-length reconstructed genes/isoforms vs reference");

  for (const char* dataset : {"schizophrenia_like", "drosophila_like"}) {
    auto preset = sim::preset(dataset);
    preset.transcriptome.num_genes = static_cast<std::size_t>(
        cfg.get_int("genes"));
    const auto data = sim::simulate_dataset(preset);
    std::printf("\n[%s] %zu genes, %zu reference isoforms, %zu reads\n", dataset,
                data.transcriptome.genes.size(), data.transcriptome.transcripts.size(),
                data.reads.reads.size());

    std::vector<double> orig_genes, par_genes, orig_isos, par_isos;
    for (int r = 0; r < runs; ++r) {
      for (const bool hybrid : {false, true}) {
        pipeline::PipelineOptions o;
        o.k = bench::kK;
        o.nranks = hybrid ? nranks : 1;
        o.run_seed = static_cast<std::uint64_t>(r + 1) + (hybrid ? 5000 : 0);
        o.work_dir = std::string("/tmp/trinity_bench_fig05_") + dataset;
        const auto result = pipeline::run_pipeline(data.reads.reads, o);
        const auto cmp = validate::compare_to_reference(
            result.transcripts, data.transcriptome.transcripts,
            data.transcriptome.gene_of_transcript);
        (hybrid ? par_genes : orig_genes).push_back(static_cast<double>(cmp.full_length_genes));
        (hybrid ? par_isos : orig_isos).push_back(static_cast<double>(cmp.full_length_isoforms));
      }
    }

    auto row = [&](const char* label, const std::vector<double>& orig,
                   const std::vector<double>& par) {
      const auto so = util::summarize(orig);
      const auto sp = util::summarize(par);
      const auto t = util::welch_t_test(orig, par);
      std::printf("  %-22s original %6.1f [%g..%g]   parallel %6.1f [%g..%g]   p=%.3f %s\n",
                  label, so.mean, so.min, so.max, sp.mean, sp.min, sp.max, t.p_two_sided,
                  t.significant_at_5pct ? "(SIGNIFICANT!)" : "(no sig. diff.)");
    };
    row("full-length genes", orig_genes, par_genes);
    row("full-length isoforms", orig_isos, par_isos);
  }
  std::printf("\npaper: for both datasets the original and MPI+OpenMP versions recover\n"
              "statistically indistinguishable numbers of full-length genes and isoforms.\n");
  return 0;
}
