// Figure 9 — "Results of parallel (MPI+OpenMP) ReadsToTranscripts
// implementation showing the time taken in the main loop and the total
// time taken in ReadsToTranscripts with increasing number of nodes."
//
// Paper shape (§V.B): the MPI loop scales almost linearly (3123 s on 4
// nodes -> 373 s on 32, 8.37x); at 32 nodes the loop is < 20% of the total,
// the remainder dominated by the still-OpenMP-only k-mer -> bundle
// assignment; the per-rank file concatenation stays constant and small
// (< 15 s in the paper); load imbalance (max vs min rank) is much lower
// than GraphFromFasta's.

#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "simpi/context.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  const auto args = util::CliArgs::parse(argc, argv);
  const auto genes = static_cast<std::size_t>(args.get_int("genes", 400));
  const int repeats = static_cast<int>(args.get_int("kernel-repeats", 20));

  bench::banner("Figure 9", "hybrid ReadsToTranscripts scaling (sugarbeet workload)");
  const auto w = bench::make_workload("sugarbeet_like", genes, "fig09");
  bench::describe(w);

  // Components from a single shared GraphFromFasta run.
  chrysalis::GraphFromFastaOptions gff;
  gff.k = bench::kK;
  const auto components = chrysalis::run_shared(w.contigs, w.counter, gff).components;

  chrysalis::ReadsToTranscriptsOptions options;
  options.k = bench::kK;
  options.max_mem_reads = 20000;
  options.kernel_repeats = repeats;
  options.model_threads_per_rank = 1;

  bench::CsvSink csv(args,
                     "nodes,loop_max,loop_min,setup,concat,total,speedup,comm_bytes,skew");
  bench::JsonSink json(args, "fig09_r2t_scaling");
  std::printf("%6s | %10s %10s | %9s %9s | %9s | %8s | %10s %6s\n", "nodes", "loop_max",
              "loop_min", "setup(s)", "concat(s)", "total(s)", "speedup", "comm(B)", "skew");
  const int trials = static_cast<int>(args.get_int("trials", 2));
  double base_total = 0.0;
  for (const int nranks : {1, 2, 4, 8, 16}) {
    // Best of N trials; see bench_fig07 for the rationale.
    chrysalis::R2TTiming timing;
    bench::CommSummary comm;
    for (int trial = 0; trial < trials; ++trial) {
      chrysalis::R2TTiming t;
      const auto ranks = simpi::run(nranks, [&](simpi::Context& ctx) {
        const auto r = chrysalis::run_hybrid(ctx, w.contigs, components, w.reads_path,
                                             options, w.work_dir);
        if (ctx.rank() == 0) t = r.timing;
      });
      if (trial == 0 || t.total_seconds() < timing.total_seconds()) {
        timing = t;
        comm = bench::summarize_comm(ranks);
      }
    }
    if (nranks == 1) base_total = timing.total_seconds();
    std::printf("%6d | %10.3f %10.3f | %9.3f %9.3f | %9.3f | %7.2fx | %10llu %6.2f\n", nranks,
                timing.main_loop.max(), timing.main_loop.min(), timing.setup_seconds,
                timing.concat_seconds, timing.total_seconds(),
                base_total / timing.total_seconds(),
                static_cast<unsigned long long>(comm.bytes_received), comm.skew);
    csv.row(nranks, timing.main_loop.max(), timing.main_loop.min(), timing.setup_seconds,
            timing.concat_seconds, timing.total_seconds(),
            base_total / timing.total_seconds(), comm.bytes_received, comm.skew);
    json.begin_entry();
    json.field("nodes", static_cast<std::int64_t>(nranks));
    json.field("loop_max", timing.main_loop.max());
    json.field("loop_min", timing.main_loop.min());
    json.field("setup_s", timing.setup_seconds);
    json.field("concat_s", timing.concat_seconds);
    json.field("total_s", timing.total_seconds());
    json.field("speedup", base_total / timing.total_seconds());
    json.field("comm_bytes_sent", static_cast<std::int64_t>(comm.bytes_sent));
    json.field("comm_bytes_received", static_cast<std::int64_t>(comm.bytes_received));
    json.field("comm_wait_s", comm.wait_seconds);
    json.field("skew_ratio", comm.skew);
    json.field("assignment_bytes_pooled",
               static_cast<std::int64_t>(timing.assignment_bytes_pooled));
  }
  std::printf("\npaper: near-linear MPI-loop scaling (8.37x from 4 to 32 nodes); overall\n"
              "19.75x at 32 nodes vs 1 node; the serial setup (k-mer -> bundle assignment)\n"
              "dominates the high-node end; concatenation constant and negligible;\n"
              "max/min rank imbalance much lower than in GraphFromFasta.\n");
  return 0;
}
