// Figure 9 — "Results of parallel (MPI+OpenMP) ReadsToTranscripts
// implementation showing the time taken in the main loop and the total
// time taken in ReadsToTranscripts with increasing number of nodes."
//
// Paper shape (§V.B): the MPI loop scales almost linearly (3123 s on 4
// nodes -> 373 s on 32, 8.37x); at 32 nodes the loop is < 20% of the total,
// the remainder dominated by the still-OpenMP-only k-mer -> bundle
// assignment; the per-rank file concatenation stays constant and small
// (< 15 s in the paper); load imbalance (max vs min rank) is much lower
// than GraphFromFasta's.
//
// Each rank count is measured three times — vote mode with overlap_io off
// (synchronous chunk parsing), vote mode with overlap on (double-buffered
// prefetch hiding the redundant-streaming I/O behind classification), and
// the quasi-mapping index engine (--r2t-mode index; the first index run
// cold-builds and persists the TranscriptIndex, later rank counts warm
// mmap-load it — docs/INDEXING.md). All three must produce byte-identical
// read assignments (asserted; exit 1 on mismatch). The JSON series carries
// the mode, the prefetch counters, and the index build/load split.

#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "simpi/context.hpp"

namespace {

/// Byte-compare of two assignment vectors (ReadAssignment is trivially
/// copyable, so memcmp over the packed array is an exact equality check).
bool same_assignments(const std::vector<trinity::chrysalis::ReadAssignment>& a,
                      const std::vector<trinity::chrysalis::ReadAssignment>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(),
                      a.size() * sizeof(trinity::chrysalis::ReadAssignment)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_fig09_r2t_scaling", "Figure 9: hybrid ReadsToTranscripts scaling (sugarbeet workload)");
  cfg.flag_int("genes", 400, "genes to simulate (scales the dataset)");
  cfg.flag_int("kernel-repeats", 20, "per-item kernel repeats (cost-model calibration)");
  cfg.flag_int("trials", 2, "trials per configuration (minimum kept)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int repeats = static_cast<int>(cfg.get_int("kernel-repeats"));

  bench::banner("Figure 9", "hybrid ReadsToTranscripts scaling (sugarbeet workload)");
  const auto w = bench::make_workload("sugarbeet_like", genes, "fig09");
  bench::describe(w);

  // Components from a single shared GraphFromFasta run.
  chrysalis::GraphFromFastaOptions gff;
  gff.k = bench::kK;
  const auto components = chrysalis::run_shared(w.contigs, w.counter, gff).components;

  chrysalis::ReadsToTranscriptsOptions options;
  options.k = bench::kK;
  options.max_mem_reads = 20000;
  options.kernel_repeats = repeats;
  options.model_threads_per_rank = 1;

  bench::CsvSink csv(cfg,
                     "nodes,mode,overlap,loop_max,loop_min,setup,concat,total,speedup,"
                     "comm_bytes,skew");
  bench::JsonSink json(cfg, "fig09_r2t_scaling");
  std::printf("%6s %5s %3s | %10s %10s | %9s %9s | %9s | %8s | %10s %6s\n", "nodes",
              "mode", "ovl", "loop_max", "loop_min", "setup(s)", "concat(s)", "total(s)",
              "speedup", "comm(B)", "skew");
  const int trials = static_cast<int>(cfg.get_int("trials"));
  double base_total = 0.0;
  struct Sweep {
    chrysalis::R2TMode mode;
    bool overlap;
  };
  const Sweep sweeps[] = {{chrysalis::R2TMode::kVote, false},
                          {chrysalis::R2TMode::kVote, true},
                          {chrysalis::R2TMode::kIndex, true}};
  for (const int nranks : {1, 2, 4, 8, 16}) {
    std::vector<chrysalis::ReadAssignment> reference;  // from the vote/overlap-off run
    for (const Sweep& sweep : sweeps) {
      const bool overlap = sweep.overlap;
      const bool indexed = sweep.mode == chrysalis::R2TMode::kIndex;
      options.mode = sweep.mode;
      options.index_path = indexed ? w.work_dir + "/fig09_index.bin" : "";
      options.overlap_io = overlap;
      // Best of N trials; see bench_fig07 for the rationale.
      chrysalis::R2TTiming timing;
      bench::CommSummary comm;
      std::vector<chrysalis::ReadAssignment> assignments;
      for (int trial = 0; trial < trials; ++trial) {
        chrysalis::R2TTiming t;
        std::vector<chrysalis::ReadAssignment> a;
        const auto ranks = simpi::run(nranks, [&](simpi::Context& ctx) {
          const auto r = chrysalis::run_hybrid(ctx, w.contigs, components, w.reads_path,
                                               options, w.work_dir);
          if (ctx.rank() == 0) {
            t = r.timing;
            a = r.assignments;
          }
        });
        if (trial == 0 || t.total_seconds() < timing.total_seconds()) {
          timing = t;
          comm = bench::summarize_comm(ranks);
        }
        assignments = std::move(a);
      }
      // Neither the prefetch nor the index engine may change what any read
      // maps to: every configuration is asserted byte-identical against the
      // vote/overlap-off run over the packed assignment array.
      if (!overlap && !indexed) {
        reference = std::move(assignments);
      } else if (!same_assignments(assignments, reference)) {
        std::fprintf(stderr,
                     "bench_fig09: %s changed the assignments at %d ranks\n",
                     indexed ? "index mode" : "overlap_io", nranks);
        return 1;
      }
      if (nranks == 1 && !overlap && !indexed) base_total = timing.total_seconds();
      std::printf("%6d %5s %3s | %10.3f %10.3f | %9.3f %9.3f | %9.3f | %7.2fx | %10llu %6.2f\n",
                  nranks, indexed ? "index" : "vote", overlap ? "on" : "off",
                  timing.main_loop.max(), timing.main_loop.min(), timing.setup_seconds,
                  timing.concat_seconds, timing.total_seconds(),
                  base_total / timing.total_seconds(),
                  static_cast<unsigned long long>(comm.bytes_received), comm.skew);
      csv.row(nranks, indexed ? "index" : "vote", overlap ? 1 : 0, timing.main_loop.max(),
              timing.main_loop.min(), timing.setup_seconds, timing.concat_seconds,
              timing.total_seconds(), base_total / timing.total_seconds(),
              comm.bytes_received, comm.skew);
      json.begin_entry();
      json.field("nodes", static_cast<std::int64_t>(nranks));
      json.field("mode", std::string(indexed ? "index" : "vote"));
      json.field("overlap", overlap);
      json.field("loop_max", timing.main_loop.max());
      json.field("loop_min", timing.main_loop.min());
      json.field("setup_s", timing.setup_seconds);
      json.field("concat_s", timing.concat_seconds);
      json.field("total_s", timing.total_seconds());
      json.field("speedup", base_total / timing.total_seconds());
      json.field("comm_bytes_sent", static_cast<std::int64_t>(comm.bytes_sent));
      json.field("comm_bytes_received", static_cast<std::int64_t>(comm.bytes_received));
      json.field("comm_wait_s", comm.wait_seconds);
      json.field("prefetch_hidden_s", timing.prefetch_hidden_seconds);
      json.field("prefetch_wait_s", timing.prefetch_wait_seconds);
      json.field("index_build_s", timing.index_build_seconds);
      json.field("index_load_s", timing.index_load_seconds);
      json.field("index_source", timing.index_source);
      json.field("skew_ratio", comm.skew);
      json.field("assignment_bytes_pooled",
                 static_cast<std::int64_t>(timing.assignment_bytes_pooled));
    }
  }
  std::printf("\npaper: near-linear MPI-loop scaling (8.37x from 4 to 32 nodes); overall\n"
              "19.75x at 32 nodes vs 1 node; the serial setup (k-mer -> bundle assignment)\n"
              "dominates the high-node end; concatenation constant and negligible;\n"
              "max/min rank imbalance much lower than in GraphFromFasta. overlap=on\n"
              "double-buffers chunk parsing against classification (identical output).\n"
              "mode=index replaces the per-run voting-map setup with the persistent\n"
              "quasi-mapping TranscriptIndex (first run builds it, later ones mmap it).\n");
  return 0;
}
