// Metrics overhead guard: live telemetry must cost the serve path under 2%.
//
// Two measurements, mirroring bench_trace_overhead's discipline:
//   1. Microbench of the hot-path primitives in ns/op against an empty-loop
//      baseline: Counter::inc (one relaxed fetch_add), Histogram::observe
//      (bucket search + two relaxed RMWs), and the disabled path (the single
//      pointer test every instrumented site performs when no registry is
//      wired up).
//   2. A/B of the bench_serve batch workload: the identical job batch run
//      with metrics off and with metrics on (registry + exporter thread at
//      --metrics-period-s). Interleaved repeats, min makespan per mode —
//      min-of-N of a deterministic batch is the noise-robust comparison.
//
// Exits non-zero when the measured A/B overhead crosses --budget (2% by
// default), which is how scripts/check.sh gates regressions (e.g. someone
// adding a lock or allocation to an instrumented serve hot path).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/timer.hpp"

namespace {

using namespace trinity;

struct HookCosts {
  double counter_ns = 0.0;
  double histogram_ns = 0.0;
  double disabled_ns = 0.0;
};

HookCosts hook_costs(std::int64_t iters) {
  HookCosts costs;
  volatile std::int64_t sink = 0;
  util::Timer base_timer;
  for (std::int64_t i = 0; i < iters; ++i) sink = sink + i;
  const double baseline = base_timer.seconds();

  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench_ops_total", "microbench");
  util::Timer counter_timer;
  for (std::int64_t i = 0; i < iters; ++i) {
    counter.inc();
    sink = sink + i;
  }
  costs.counter_ns =
      (counter_timer.seconds() - baseline) / static_cast<double>(iters) * 1e9;

  obs::Histogram& hist = registry.histogram("bench_latency_seconds",
                                            "microbench", obs::latency_buckets_s());
  util::Timer hist_timer;
  for (std::int64_t i = 0; i < iters; ++i) {
    hist.observe(static_cast<double>(i & 1023) * 1e-3);
    sink = sink + i;
  }
  costs.histogram_ns =
      (hist_timer.seconds() - baseline) / static_cast<double>(iters) * 1e9;

  // The disabled path: every instrumented site guards on a registry pointer
  // that is null when telemetry is off.
  obs::MetricsRegistry* volatile disabled = nullptr;
  util::Timer disabled_timer;
  for (std::int64_t i = 0; i < iters; ++i) {
    if (disabled != nullptr) counter.inc();
    sink = sink + i;
  }
  costs.disabled_ns =
      (disabled_timer.seconds() - baseline) / static_cast<double>(iters) * 1e9;
  return costs;
}

struct WorkloadConfig {
  int jobs = 12;
  int tenants = 3;
  int total_ranks = 8;
  int ranks_per_job = 2;
  double metrics_period_s = 0.25;
  std::string reads_path;
  std::string root_base;
};

// One batch run (all jobs submitted up front, no arrival sleeps); returns
// the makespan. Every run gets a fresh root so journal recovery and the
// exporter files never leak across runs.
double run_batch(const WorkloadConfig& w, bool metrics, int repeat) {
  serve::ServerOptions options;
  options.total_ranks = w.total_ranks;
  options.max_queue_depth = w.jobs + 8;
  options.default_quota.max_queued_jobs = w.jobs;
  options.default_quota.max_concurrent_ranks = w.total_ranks;
  options.root_dir = w.root_base + (metrics ? "/on_" : "/off_") + std::to_string(repeat);
  // A stale root from a previous invocation would replay its journal and
  // reject the whole batch as duplicates.
  std::filesystem::remove_all(options.root_dir);
  options.metrics = metrics;
  options.metrics_export_period_s = w.metrics_period_s;
  serve::JobServer server(options);

  pipeline::PipelineOptions job_options;
  job_options.k = 15;
  job_options.nranks = w.ranks_per_job;
  job_options.omp_threads = 1;
  job_options.trace_sample_interval_ms = 0;

  util::Timer wall;
  for (int i = 0; i < w.jobs; ++i) {
    serve::JobSpec spec;
    spec.job_id = "bench-" + std::to_string(i);
    spec.tenant = "tenant-" + std::to_string(i % w.tenants);
    spec.reads_path = w.reads_path;
    spec.options = job_options;
    spec.options.run_seed = static_cast<std::uint64_t>(i);
    const serve::AdmitResult result = server.submit(std::move(spec));
    if (!result.accepted()) {
      std::printf("unexpected reject [%s]: %s\n", serve::to_string(result.code),
                  result.detail.c_str());
    }
  }
  server.drain();
  const double makespan = wall.seconds();
  server.shutdown();
  for (const auto& job : server.jobs()) {
    if (job.state != serve::JobState::kCompleted) {
      std::printf("job %s did not complete (%s)\n", job.job_id.c_str(),
                  serve::to_string(job.state));
    }
  }
  return makespan;
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = bench::bench_config(
      "bench_obs_overhead", "Metrics overhead: hot-path ns/op and serve A/B gate");
  cfg.flag_int("jobs", 12, "jobs per batch run")
      .flag_int("tenants", 3, "tenants the jobs round-robin over")
      .flag_int("total-ranks", 8, "shared rank-pool size")
      .flag_int("ranks-per-job", 2, "simulated ranks per job")
      .flag_int("genes", 8, "genes in the shared simulated dataset")
      .flag_int("repeats", 3, "interleaved repeats per mode (min taken)")
      .flag_double("metrics-period-s", 0.25, "exporter cadence in the metrics-on runs")
      .flag_double("budget", 0.02, "maximum allowed metrics-on overhead fraction")
      .flag_int("iters", 20'000'000, "hot-loop iterations for the ns/op microbench");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const double budget = cfg.get_double("budget");
  const int repeats = std::max(1, static_cast<int>(cfg.get_int("repeats")));

  bench::banner("Metrics overhead", "live-telemetry cost on the serve batch workload");

  const HookCosts costs = hook_costs(cfg.get_int("iters"));
  std::printf("counter inc:        %6.2f ns/op\n", costs.counter_ns);
  std::printf("histogram observe:  %6.2f ns/op\n", costs.histogram_ns);
  std::printf("disabled path:      %6.2f ns/op (pointer test)\n\n", costs.disabled_ns);

  const bench::Workload workload = bench::make_workload(
      "tiny", static_cast<std::size_t>(cfg.get_int("genes")), "obs_overhead");
  bench::describe(workload);

  WorkloadConfig w;
  w.jobs = static_cast<int>(cfg.get_int("jobs"));
  w.tenants = static_cast<int>(cfg.get_int("tenants"));
  w.total_ranks = static_cast<int>(cfg.get_int("total-ranks"));
  w.ranks_per_job = static_cast<int>(cfg.get_int("ranks-per-job"));
  w.metrics_period_s = cfg.get_double("metrics-period-s");
  w.reads_path = workload.reads_path;
  w.root_base = workload.work_dir + "/serve_roots";

  std::vector<double> off_walls, on_walls;
  for (int r = 0; r < repeats; ++r) {
    off_walls.push_back(run_batch(w, /*metrics=*/false, r));
    on_walls.push_back(run_batch(w, /*metrics=*/true, r));
    std::printf("repeat %d: metrics off %.3f s, on %.3f s\n", r,
                off_walls.back(), on_walls.back());
  }
  const double off = *std::min_element(off_walls.begin(), off_walls.end());
  const double on = *std::min_element(on_walls.begin(), on_walls.end());
  const double overhead = off > 0.0 ? std::max(0.0, (on - off) / off) : 0.0;

  std::printf("\nbatch of %d job(s) over %d rank(s), min of %d repeat(s):\n",
              w.jobs, w.total_ranks, repeats);
  std::printf("metrics off %.3f s, metrics on %.3f s (exporter every %.2f s)\n",
              off, on, w.metrics_period_s);
  std::printf("measured metrics-on overhead: %.4f%% (budget %.1f%%)\n",
              overhead * 100.0, budget * 100.0);

  bench::JsonSink json(cfg, "obs_overhead");
  json.begin_entry();
  json.field("counter_ns", costs.counter_ns);
  json.field("histogram_ns", costs.histogram_ns);
  json.field("disabled_ns", costs.disabled_ns);
  json.field("jobs", static_cast<std::int64_t>(w.jobs));
  json.field("repeats", static_cast<std::int64_t>(repeats));
  json.field("metrics_period_s", w.metrics_period_s);
  json.field("min_wall_off_s", off);
  json.field("min_wall_on_s", on);
  json.field("overhead", overhead);
  json.field("budget", budget);

  if (overhead >= budget) {
    std::printf("FAIL: metrics-on overhead exceeds the budget\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
