// GraphFromFasta sharding A/B — pooled replication vs owner-computes.
//
// The pooled strategies Allgatherv every weld to every rank and pool the
// loop-2 match records back through rank 0, so total traffic grows with
// (ranks x welds). Owner-computes routes each weld to the rank that owns
// its smallest canonical (k-1)-mer (alltoallv), dedups at the owner, and
// resolves components with a distributed union-find whose boundary-edge
// exchanges are alltoallv too — per-rank traffic stays near the data size.
//
// This bench runs both strategies at 1/2/4/8 ranks on the Figure 7
// workload and reports, per configuration: virtual wall time, total
// payload bytes, and the Allgatherv/Alltoallv split. It is also a
// correctness + perf gate for scripts/check.sh:
//
//   - the contig -> component table must be identical between modes at
//     every rank count (exit 1 on mismatch), and
//   - --min-bytes-reduction R (default 1.0, 0 disables) fails the run
//     unless pooled_bytes / owner_bytes >= R at every rank count >= 4.
//
// The series is written to BENCH_gff_shard.json by default so repeated
// runs leave a comparable record next to the other bench artifacts.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "simpi/context.hpp"

namespace {

struct ModeRun {
  double virtual_wall = 0.0;        // max rank virtual_seconds
  std::uint64_t total_bytes = 0;    // payload sent, all ops, all ranks
  std::uint64_t allgatherv_bytes = 0;
  std::uint64_t alltoallv_bytes = 0;
  double wait_seconds = 0.0;
  trinity::chrysalis::GffTiming timing;
  std::vector<std::int32_t> components;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("bench_gff_shard",
             "GraphFromFasta sharding: pooled replication vs owner-computes");
  cfg.flag_int("genes", 200, "genes to simulate (scales the dataset)")
      .flag_int("kernel-repeats", 40, "per-item kernel repeats (cost-model calibration)")
      .flag_int("trials", 2, "trials per configuration (minimum kept)")
      .flag_double("min-bytes-reduction", 1.0,
                   "fail (exit 1) unless pooled/owner total-bytes ratio reaches this at "
                   "every rank count >= 4; 0 disables the gate")
      .flag_string("csv", "", "also write the measured series as CSV to this path")
      .flag_string("json", "BENCH_gff_shard.json",
                   "write the series as one JSON document to this path ('' disables)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;

  bench::banner("sharding A/B", "pooled replication vs owner-computes GraphFromFasta");
  const auto w = bench::make_workload(
      "sugarbeet_like", static_cast<std::size_t>(cfg.get_int("genes")), "gff_shard");
  bench::describe(w);

  chrysalis::GraphFromFastaOptions options;
  options.k = bench::kK;
  options.kernel_repeats = static_cast<int>(cfg.get_int("kernel-repeats"));
  options.model_threads_per_rank = 1;

  bench::CsvSink csv(cfg,
                     "ranks,sharding,virtual_wall,total_bytes,allgatherv_bytes,"
                     "alltoallv_bytes,wait_s,bytes_reduction");
  bench::JsonSink json(cfg, "gff_shard");
  std::printf("%6s %8s | %12s | %12s %12s %12s | %9s | %9s\n", "ranks", "sharding",
              "virt_wall(s)", "total(B)", "allgath(B)", "alltoall(B)", "wait(s)",
              "reduction");

  const int trials = static_cast<int>(cfg.get_int("trials"));
  const double min_reduction = cfg.get_double("min-bytes-reduction");
  bool gate_failed = false;
  for (const int nranks : {1, 2, 4, 8}) {
    ModeRun pooled;
    for (const auto sharding :
         {chrysalis::ShardingStrategy::kPooled, chrysalis::ShardingStrategy::kOwner}) {
      options.sharding = sharding;
      const char* mode = chrysalis::to_string(sharding);
      ModeRun best;
      for (int trial = 0; trial < trials; ++trial) {
        ModeRun run;
        const auto ranks = simpi::run(nranks, [&](simpi::Context& ctx) {
          const auto r = chrysalis::run_hybrid(ctx, w.contigs, w.counter, options);
          if (ctx.rank() == 0) {
            run.timing = r.timing;
            run.components = r.components.component_of;
          }
        });
        for (const auto& rr : ranks) {
          run.virtual_wall = std::max(run.virtual_wall, rr.virtual_seconds());
          run.total_bytes += rr.comm.total_bytes_sent();
          run.allgatherv_bytes += rr.comm.of(simpi::CommOp::kAllgatherv).bytes_sent;
          run.alltoallv_bytes += rr.comm.of(simpi::CommOp::kAlltoallv).bytes_sent;
          run.wait_seconds += rr.comm.total_wait_seconds();
        }
        if (trial == 0 || run.virtual_wall < best.virtual_wall) best = std::move(run);
      }
      // Correctness gate: owner-computes must reproduce the pooled
      // clustering bit-for-bit at every rank count.
      if (sharding == chrysalis::ShardingStrategy::kPooled) {
        pooled = best;
      } else if (best.components != pooled.components) {
        std::fprintf(stderr,
                     "bench_gff_shard: sharding=owner changed the components at %d ranks\n",
                     nranks);
        return 1;
      }
      const double reduction =
          best.total_bytes > 0
              ? static_cast<double>(pooled.total_bytes) / static_cast<double>(best.total_bytes)
              : 0.0;
      std::printf("%6d %8s | %12.3f | %12llu %12llu %12llu | %9.3f | %8.2fx\n", nranks,
                  mode, best.virtual_wall, static_cast<unsigned long long>(best.total_bytes),
                  static_cast<unsigned long long>(best.allgatherv_bytes),
                  static_cast<unsigned long long>(best.alltoallv_bytes), best.wait_seconds,
                  reduction);
      csv.row(nranks, mode, best.virtual_wall, best.total_bytes, best.allgatherv_bytes,
              best.alltoallv_bytes, best.wait_seconds, reduction);
      json.begin_entry();
      json.field("ranks", static_cast<std::int64_t>(nranks));
      json.field("sharding", std::string(mode));
      json.field("virtual_wall_s", best.virtual_wall);
      json.field("total_bytes", static_cast<std::int64_t>(best.total_bytes));
      json.field("allgatherv_bytes", static_cast<std::int64_t>(best.allgatherv_bytes));
      json.field("alltoallv_bytes", static_cast<std::int64_t>(best.alltoallv_bytes));
      json.field("wait_s", best.wait_seconds);
      json.field("bytes_reduction", reduction);
      json.field("weld_bytes_pooled",
                 static_cast<std::int64_t>(best.timing.weld_bytes_pooled));
      json.field("weld_bytes_routed",
                 static_cast<std::int64_t>(best.timing.weld_bytes_routed));
      json.field("dsu_rounds", static_cast<std::int64_t>(best.timing.dsu_rounds));
      json.field("dsu_edge_bytes_routed",
                 static_cast<std::int64_t>(best.timing.dsu_edge_bytes_routed));
      // The perf gate bites only where replication actually hurts: the
      // pooled strategies' traffic grows with the rank count, so parity at
      // 1-2 ranks is expected and only >= 4 ranks is gated.
      if (sharding == chrysalis::ShardingStrategy::kOwner && nranks >= 4 &&
          min_reduction > 0.0 && reduction < min_reduction) {
        std::fprintf(stderr,
                     "bench_gff_shard: bytes reduction %.2fx at %d ranks is below "
                     "--min-bytes-reduction %.2f\n",
                     reduction, nranks, min_reduction);
        gate_failed = true;
      }
    }
  }
  if (gate_failed) return 1;
  std::printf("\nowner-computes: identical components, traffic bounded by the data size\n"
              "instead of (ranks x welds) — the reduction column is the pooled/owner\n"
              "total-payload ratio at the same rank count.\n");
  return 0;
}
