// bench_serve: throughput and latency of the multi-tenant job server
// under a Poisson arrival workload.
//
// The figure benches measure one assembly at a time; this bench measures
// the serving regime the ROADMAP targets — many small assemblies from
// several tenants arriving as a Poisson process, multiplexed over one
// shared rank pool with priority preemption. Reported: sustained
// throughput (completed jobs per second of wall time from the first
// submission to drain) and the p50/p95/p99 completion latency
// (queue wait + run time per job), plus preemption and retry counts.
//
// Run:
//   ./build/bench/bench_serve                      # writes BENCH_serve.json
//   ./build/bench/bench_serve --jobs 40 --tenants 4 --arrival-rate 4 --fault
//
// --fault gives one mid-workload job an injected rank kill (retried
// in-process by the pipeline's retry driver) to show that recovery under
// load stays confined to the faulted tenant.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(sorted.size())) - 1.0,
                       static_cast<double>(sorted.size() - 1)));
  return sorted[std::max<std::size_t>(idx, 0)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("bench_serve",
             "multi-tenant serving throughput/latency under Poisson arrivals");
  cfg.flag_int("jobs", 24, "jobs to submit (>= 20 for the acceptance workload)")
      .flag_int("tenants", 3, "tenants the jobs round-robin over")
      .flag_int("total-ranks", 8, "shared rank-pool size")
      .flag_int("ranks-per-job", 2, "simulated ranks per job")
      .flag_double("arrival-rate", 3.0, "Poisson arrival rate, jobs/second")
      .flag_int("genes", 8, "genes in the shared simulated dataset")
      .flag_int("seed", 1, "arrival-process RNG seed")
      .flag_bool("fault", false, "inject a rank kill into one mid-workload job")
      .flag_bool("journal", true,
                 "durable job journal (--no-journal isolates its overhead)")
      .flag_bool("metrics", true,
                 "live metrics registry + exporter (--no-metrics isolates "
                 "the telemetry overhead)")
      .flag_string("csv", "", "also write per-job rows as CSV to this path")
      .flag_string("json", "BENCH_serve.json", "summary JSON destination");
  int exit_code = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &exit_code)) return exit_code;

  const int jobs = static_cast<int>(cfg.get_int("jobs"));
  const int tenants = static_cast<int>(cfg.get_int("tenants"));
  const int total_ranks = static_cast<int>(cfg.get_int("total-ranks"));
  const int ranks_per_job = static_cast<int>(cfg.get_int("ranks-per-job"));
  const double arrival_rate = cfg.get_double("arrival-rate");

  bench::banner("BENCH serve", "sustained jobs/sec and tail latency, Poisson arrivals");
  const bench::Workload workload = bench::make_workload("tiny", static_cast<std::size_t>(cfg.get_int("genes")), "serve");
  bench::describe(workload);

  serve::ServerOptions server_options;
  server_options.total_ranks = total_ranks;
  server_options.max_queue_depth = jobs + 8;  // arrivals must not hit backpressure here
  server_options.default_quota.max_queued_jobs = jobs;
  server_options.default_quota.max_concurrent_ranks = total_ranks;
  server_options.root_dir = workload.work_dir + "/serve_root";
  // A serve root left by a previous invocation would replay its journal and
  // reject every job in this run as a duplicate submission.
  std::filesystem::remove_all(server_options.root_dir);
  server_options.journal = cfg.get_bool("journal");
  server_options.metrics = cfg.get_bool("metrics");
  serve::JobServer server(server_options);

  // The job template: the shared tiny reads file, byte-reproducible
  // settings (single OpenMP thread), no RSS sampler noise.
  pipeline::PipelineOptions job_options;
  job_options.k = 15;
  job_options.nranks = ranks_per_job;
  job_options.omp_threads = 1;
  job_options.trace_sample_interval_ms = 0;

  util::Rng arrivals(static_cast<std::uint64_t>(cfg.get_int("seed")));
  util::Timer wall;
  std::printf("submitting %d job(s) from %d tenant(s) at %.1f/s over %d rank(s)...\n\n",
              jobs, tenants, arrival_rate, total_ranks);
  for (int i = 0; i < jobs; ++i) {
    serve::JobSpec spec;
    spec.job_id = "bench-" + std::to_string(i);
    spec.tenant = "tenant-" + std::to_string(i % tenants);
    // Every fifth job is high-priority: exercises the preemption path
    // whenever the pool is saturated when it arrives.
    spec.priority = (i % 5 == 4) ? 10 : 0;
    spec.reads_path = workload.reads_path;
    spec.options = job_options;
    spec.options.run_seed = static_cast<std::uint64_t>(i);
    if (cfg.get_bool("fault") && i == jobs / 2) {
      spec.options.fault = simpi::FaultPlan{};
      spec.options.fault.rank = 1;
      spec.options.fault.after_virtual_seconds = 0.0;
      spec.options.fault_stage = "chrysalis.graph_from_fasta";
      spec.options.retry.max_attempts = 3;
    }
    const serve::AdmitResult result = server.submit(std::move(spec));
    if (!result.accepted()) {
      std::printf("unexpected reject [%s]: %s\n", serve::to_string(result.code),
                  result.detail.c_str());
    }
    const double gap = -std::log(arrivals.uniform01()) / arrival_rate;
    std::this_thread::sleep_for(std::chrono::duration<double>(gap));
  }
  server.drain();
  const double makespan = wall.seconds();
  server.shutdown();

  int completed = 0, failed = 0, preemptions = 0;
  std::vector<double> latencies;
  bench::CsvSink csv(cfg, "job_id,tenant,priority,state,dispatches,preemptions,wait_s,run_s,latency_s");
  for (const auto& job : server.jobs()) {
    const double latency = job.queue_wait_seconds + job.run_seconds;
    if (job.state == serve::JobState::kCompleted) {
      ++completed;
      latencies.push_back(latency);
    } else if (job.state == serve::JobState::kFailed) {
      ++failed;
      std::printf("job %s FAILED: %s\n", job.job_id.c_str(), job.error.c_str());
    }
    preemptions += job.preemptions;
    csv.row(job.job_id, job.tenant, job.priority, serve::to_string(job.state),
            job.dispatches, job.preemptions, job.queue_wait_seconds, job.run_seconds,
            latency);
  }
  std::sort(latencies.begin(), latencies.end());
  const double sustained = makespan > 0.0 ? completed / makespan : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);

  std::int64_t stage_retries = 0;
  const serve::Accounting accounting = server.accounting();
  for (const auto& a : accounting.accounts()) stage_retries += a.stage_retries;

  std::printf("\ncompleted %d / %d job(s) (%d failed) in %.2f s\n", completed, jobs,
              failed, makespan);
  std::printf("sustained throughput: %.3f jobs/s\n", sustained);
  std::printf("latency p50/p95/p99:  %.3f / %.3f / %.3f s\n", p50, p95, p99);
  std::printf("preemptions: %d, stage retries: %lld\n\n", preemptions,
              static_cast<long long>(stage_retries));
  accounting.summarize(std::cout);

  // Final registry snapshot: lifetime totals the per-job table cannot see
  // (typed reject counts, the queue-depth high-water mark, journal fsync
  // tail). Zeroes under --no-metrics.
  double metrics_rejected = 0.0, metrics_queue_peak = 0.0, fsync_p99 = 0.0;
  std::uint64_t fsync_appends = 0;
  if (cfg.get_bool("metrics")) {
    const obs::MetricsSnapshot snap = server.metrics_snapshot();
    metrics_queue_peak = snap.value_or("trinity_serve_queue_depth_peak", {});
    if (const obs::FamilySnapshot* f =
            snap.find_family("trinity_serve_jobs_rejected_total")) {
      for (const auto& s : f->series) metrics_rejected += s.value;
    }
    if (const obs::FamilySnapshot* f =
            snap.find_family("trinity_serve_journal_append_seconds")) {
      for (const auto& s : f->series) {
        fsync_p99 = s.hist.quantile(0.99);
        fsync_appends = s.hist.count();
      }
    }
    std::printf("\nmetrics: queue peak %.0f, %.0f rejected, journal fsync p99 "
                "%.2f ms over %llu append(s)\n",
                metrics_queue_peak, metrics_rejected, fsync_p99 * 1e3,
                static_cast<unsigned long long>(fsync_appends));
  }

  bench::JsonSink json(cfg, "serve");
  json.begin_entry();
  json.field("jobs", static_cast<std::int64_t>(jobs));
  json.field("tenants", static_cast<std::int64_t>(tenants));
  json.field("total_ranks", static_cast<std::int64_t>(total_ranks));
  json.field("ranks_per_job", static_cast<std::int64_t>(ranks_per_job));
  json.field("arrival_rate_per_s", arrival_rate);
  json.field("fault", cfg.get_bool("fault"));
  json.field("journal", cfg.get_bool("journal"));
  json.field("completed", static_cast<std::int64_t>(completed));
  json.field("failed", static_cast<std::int64_t>(failed));
  json.field("preemptions", static_cast<std::int64_t>(preemptions));
  json.field("stage_retries", stage_retries);
  json.field("makespan_s", makespan);
  json.field("sustained_jobs_per_s", sustained);
  json.field("latency_p50_s", p50);
  json.field("latency_p95_s", p95);
  json.field("latency_p99_s", p99);
  json.field("metrics", cfg.get_bool("metrics"));
  json.field("metrics_rejected_total", metrics_rejected);
  json.field("metrics_queue_depth_peak", metrics_queue_peak);
  json.field("metrics_journal_fsync_p99_s", fsync_p99);
  return failed == 0 ? 0 : 1;
}
