// Kernel microbenchmarks (google-benchmark): the per-item costs every
// figure bench is built from. Useful for spotting regressions in the hot
// paths independent of the figure harnesses.

#include <benchmark/benchmark.h>

#include "chrysalis/components.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "kmer/counter.hpp"
#include "simpi/pack.hpp"
#include "sw/smith_waterman.hpp"
#include "seq/dna.hpp"
#include "seq/kmer.hpp"
#include "util/rng.hpp"

namespace {

using namespace trinity;

std::string random_dna(std::size_t length, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string out(length, 'A');
  for (auto& c : out) c = seq::code_to_base(static_cast<std::uint8_t>(rng.uniform_below(4)));
  return out;
}

void BM_KmerExtract(benchmark::State& state) {
  const seq::KmerCodec codec(25);
  const std::string s = random_dna(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.extract_canonical(s));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_KmerExtract)->Arg(100)->Arg(1000)->Arg(10000);

void BM_KmerCount(benchmark::State& state) {
  std::vector<seq::Sequence> reads;
  for (int i = 0; i < 100; ++i) {
    reads.push_back({"r", random_dna(100, static_cast<std::uint64_t>(i + 1))});
  }
  for (auto _ : state) {
    kmer::CounterOptions o;
    o.k = 25;
    o.num_threads = 1;
    kmer::KmerCounter counter(o);
    counter.add_sequences(reads);
    benchmark::DoNotOptimize(counter.distinct());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_KmerCount);

void BM_SmithWaterman(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string a = random_dna(n, 2);
  std::string b = a;
  b[n / 2] = b[n / 2] == 'A' ? 'C' : 'A';
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::align(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SmithWaterman)->Arg(200)->Arg(1000);

void BM_SmithWatermanBanded(benchmark::State& state) {
  const std::string a = random_dna(1000, 3);
  std::string b = a;
  b[500] = b[500] == 'A' ? 'C' : 'A';
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::align_banded(a, b, 32));
  }
}
BENCHMARK(BM_SmithWatermanBanded);

void BM_WeldHarvest(benchmark::State& state) {
  // One contig pair sharing a region, dense read support.
  const std::string shared = random_dna(120, 4);
  std::vector<seq::Sequence> contigs{{"a", random_dna(400, 5) + shared + random_dna(400, 6)},
                                     {"b", random_dna(400, 7) + shared + random_dna(400, 8)}};
  std::vector<seq::Sequence> reads;
  for (const auto& c : contigs) {
    for (std::size_t p = 0; p + 60 <= c.bases.size(); p += 5) {
      reads.push_back({"r", c.bases.substr(p, 60)});
    }
  }
  kmer::CounterOptions copt;
  copt.k = 25;
  copt.num_threads = 1;
  kmer::KmerCounter counter(copt);
  counter.add_sequences(reads);
  chrysalis::GraphFromFastaOptions options;
  options.k = 25;
  const auto multiplicity = chrysalis::detail::contig_kmer_multiplicity(contigs, 25);

  for (auto _ : state) {
    std::vector<std::string> welds;
    chrysalis::detail::harvest_welds(contigs[0], multiplicity, counter, options, welds);
    benchmark::DoNotOptimize(welds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WeldHarvest);

void BM_AssignRead(benchmark::State& state) {
  std::vector<seq::Sequence> contigs;
  for (int i = 0; i < 50; ++i) {
    contigs.push_back({"c", random_dna(1000, static_cast<std::uint64_t>(i + 10))});
  }
  const auto components = chrysalis::cluster_contigs(contigs.size(), {});
  const auto bundle_of = chrysalis::build_bundle_kmer_map(contigs, components, 25);
  const seq::Sequence read{"r", contigs[25].bases.substr(100, 100)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(chrysalis::detail::assign_read(read, 0, bundle_of, 25));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AssignRead);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  std::vector<chrysalis::ContigPair> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    pairs.push_back({static_cast<std::int32_t>(rng.uniform_below(n)),
                     static_cast<std::int32_t>(rng.uniform_below(n))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(chrysalis::cluster_contigs(n, pairs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnionFind)->Arg(1000)->Arg(100000);

void BM_PackStrings(benchmark::State& state) {
  std::vector<std::string> welds;
  for (int i = 0; i < 1000; ++i) welds.push_back(random_dna(50, static_cast<std::uint64_t>(i)));
  for (auto _ : state) {
    const auto packed = simpi::pack_strings(welds);
    benchmark::DoNotOptimize(simpi::unpack_strings(packed));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_PackStrings);

}  // namespace

BENCHMARK_MAIN();
