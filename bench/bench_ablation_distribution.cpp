// Ablation — the design choices Section III narrates but does not plot:
//
//  1. GraphFromFasta distribution: the paper first "pre-allocated chunks of
//     Inchworm contigs to each MPI process" (contiguous blocks), which
//     "did not give us a good speedup", then switched to chunked
//     round-robin. This bench measures both under the same workload: the
//     block scheme concentrates the long contigs (and the weld-dense
//     regions) on few ranks, inflating the max/min rank-time ratio.
//
//  2. ReadsToTranscripts chunk distribution: the first design had a master
//     rank read and ship chunks to slaves ("relatively heavy
//     communications ... which leads to a bottleneck particularly as the
//     number of slave nodes increases"); the final design streams
//     redundantly on every rank with zero communication. This bench
//     compares the two strategies' loop times and communication costs.

#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "simpi/context.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_ablation_distribution", "Ablation: distribution strategies the paper tried and discarded");
  cfg.flag_int("genes", 400, "genes to simulate (scales the dataset)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));

  bench::banner("Ablation", "distribution strategies the paper tried and discarded");
  const auto w = bench::make_workload("sugarbeet_like", genes, "ablation");
  bench::describe(w);

  // --- 1: chunked round-robin vs pre-allocated blocks in GraphFromFasta ----
  std::printf("GraphFromFasta distribution (loop1+loop2 per rank, %d kernel repeats):\n", 80);
  std::printf("%6s | %-18s %11s %11s %11s\n", "nodes", "strategy", "max(s)", "min(s)",
              "max/min");
  for (const int nranks : {4, 8, 16}) {
    for (const auto dist :
         {chrysalis::Distribution::kChunkedRoundRobin, chrysalis::Distribution::kBlock}) {
      chrysalis::GraphFromFastaOptions options;
      options.k = bench::kK;
      options.kernel_repeats = 80;
      options.model_threads_per_rank = 1;
      options.distribution = dist;
      chrysalis::GffTiming timing;
      simpi::run(nranks, [&](simpi::Context& ctx) {
        const auto r = chrysalis::run_hybrid(ctx, w.contigs, w.counter, options);
        if (ctx.rank() == 0) timing = r.timing;
      });
      const double max_t = timing.loop1.max() + timing.loop2.max();
      const double min_t = timing.loop1.min() + timing.loop2.min();
      std::printf("%6d | %-18s %11.3f %11.3f %11.2f\n", nranks,
                  dist == chrysalis::Distribution::kBlock ? "block (discarded)"
                                                          : "chunked-rr (final)",
                  max_t, min_t, min_t > 0 ? max_t / min_t : 0.0);
    }
  }

  // --- 2: redundant streaming vs master/slave in ReadsToTranscripts ---------
  chrysalis::GraphFromFastaOptions gff;
  gff.k = bench::kK;
  const auto components = chrysalis::run_shared(w.contigs, w.counter, gff).components;

  std::printf("\nReadsToTranscripts chunk distribution:\n");
  std::printf("%6s | %-24s %11s %11s %11s\n", "nodes", "strategy", "loop_max(s)", "comm(s)",
              "total(s)");
  for (const int nranks : {2, 4, 8}) {
    for (const auto strategy :
         {chrysalis::R2TStrategy::kRedundantStreaming, chrysalis::R2TStrategy::kMasterSlave}) {
      chrysalis::ReadsToTranscriptsOptions options;
      options.k = bench::kK;
      options.max_mem_reads = 20000;
      options.kernel_repeats = 6;
      options.model_threads_per_rank = 1;
      options.strategy = strategy;
      chrysalis::R2TTiming timing;
      simpi::run(nranks, [&](simpi::Context& ctx) {
        const auto r = chrysalis::run_hybrid(ctx, w.contigs, components, w.reads_path,
                                             options, w.work_dir);
        if (ctx.rank() == 0) timing = r.timing;
      });
      std::printf("%6d | %-24s %11.3f %11.3f %11.3f\n", nranks,
                  strategy == chrysalis::R2TStrategy::kMasterSlave
                      ? "master/slave (discarded)"
                      : "redundant (final)",
                  timing.main_loop.max(), timing.comm_seconds, timing.total_seconds());
    }
  }
  std::printf("\npaper: block pre-allocation was discarded for poor speedup; master/slave\n"
              "was discarded for its communication bottleneck as slave counts grow.\n");
  return 0;
}
