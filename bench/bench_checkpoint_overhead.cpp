// Checkpoint/restart overhead — what fault tolerance costs and what it
// saves. Three configurations of the same hybrid pipeline run:
//
//   off     checkpointing disabled (the seed repo's behaviour)
//   on      checkpointing enabled: every stage hashed + manifest committed
//   resume  a run killed by an injected rank fault mid-Chrysalis, then
//           re-launched with resume=true, completing from the checkpoint
//
// Reported per configuration: host wall time, modeled (virtual) Chrysalis
// time, total checkpoint overhead (the "<stage>.checkpoint" trace phases),
// and the stage execution/resume counts. With --json <path> the same
// numbers are written as a machine-readable series.

#include <stdexcept>

#include "bench_common.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "util/timer.hpp"

namespace {

struct Measurement {
  std::string config;
  double wall_seconds = 0.0;
  double chrysalis_virtual_seconds = 0.0;
  double checkpoint_seconds = 0.0;
  std::int64_t stages_executed = 0;
  std::int64_t stages_resumed = 0;
  std::int64_t stage_retries = 0;
};

Measurement measure(const std::string& config, const trinity::pipeline::PipelineResult& result,
                    double wall_seconds) {
  Measurement m;
  m.config = config;
  m.wall_seconds = wall_seconds;
  m.chrysalis_virtual_seconds = result.chrysalis_virtual_seconds();
  for (const auto& phase : result.trace) {
    if (phase.name.size() > 11 &&
        phase.name.compare(phase.name.size() - 11, 11, ".checkpoint") == 0) {
      m.checkpoint_seconds += phase.wall_seconds;
    }
  }
  m.stages_executed = static_cast<std::int64_t>(result.stages_executed.size());
  m.stages_resumed = static_cast<std::int64_t>(result.stages_resumed.size());
  m.stage_retries = result.stage_retries;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_checkpoint_overhead", "Checkpoint overhead: pipeline cost with checkpointing off / on / resume-after-fault");
  cfg.flag_int("genes", 120, "genes to simulate (scales the dataset)");
  cfg.flag_int("ranks", 4, "rank count for the measured world(s)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int nranks = static_cast<int>(cfg.get_int("ranks"));

  bench::banner("Checkpoint overhead",
                "pipeline cost with checkpointing off / on / resume-after-fault");

  auto preset = sim::preset("sugarbeet_like");
  preset.transcriptome.num_genes = genes;
  const auto data = sim::simulate_dataset(preset);
  std::printf("workload: %zu reference isoforms, %zu reads, %d ranks\n\n",
              data.transcriptome.transcripts.size(), data.reads.reads.size(), nranks);

  pipeline::PipelineOptions base;
  base.k = bench::kK;
  base.nranks = nranks;
  base.trace_sample_interval_ms = 0;

  std::vector<Measurement> series;

  {
    auto options = base;
    options.checkpoint = false;
    options.work_dir = "/tmp/trinity_bench_ckpt_off";
    util::Timer wall;
    const auto result = pipeline::run_pipeline(data.reads.reads, options);
    series.push_back(measure("off", result, wall.seconds()));
  }

  {
    auto options = base;
    options.work_dir = "/tmp/trinity_bench_ckpt_on";
    util::Timer wall;
    const auto result = pipeline::run_pipeline(data.reads.reads, options);
    series.push_back(measure("on", result, wall.seconds()));
  }

  {
    auto options = base;
    options.work_dir = "/tmp/trinity_bench_ckpt_resume";
    std::filesystem::remove(options.work_dir + "/" + pipeline::kManifestFileName);
    // Kill rank 1 at its first communication inside GraphFromFasta; with a
    // single attempt the run dies exactly like a real job loss.
    options.fault.rank = 1;
    options.fault.after_virtual_seconds = 0.0;
    options.fault_stage = "chrysalis.graph_from_fasta";
    options.retry.max_attempts = 1;
    try {
      (void)pipeline::run_pipeline(data.reads.reads, options);
      throw std::logic_error("injected fault did not fire");
    } catch (const simpi::RankFaultError&) {
      // Expected: the job is gone; the manifest survives.
    }
    auto relaunch = base;
    relaunch.work_dir = options.work_dir;
    relaunch.resume = true;
    util::Timer wall;
    const auto result = pipeline::run_pipeline(data.reads.reads, relaunch);
    series.push_back(measure("resume", result, wall.seconds()));
  }

  std::printf("%-8s %10s %14s %16s %10s %10s\n", "config", "wall(s)", "chrysalis(vs)",
              "checkpoint(s)", "executed", "resumed");
  for (const auto& m : series) {
    std::printf("%-8s %10.3f %14.2f %16.4f %10lld %10lld\n", m.config.c_str(),
                m.wall_seconds, m.chrysalis_virtual_seconds, m.checkpoint_seconds,
                static_cast<long long>(m.stages_executed),
                static_cast<long long>(m.stages_resumed));
  }
  const double off_wall = series[0].wall_seconds;
  const double on_wall = series[1].wall_seconds;
  std::printf("\ncheckpointing overhead: %.1f%% of wall time "
              "(%.4fs of hashing + manifest commits);\n"
              "resume after a mid-Chrysalis rank loss redid %lld of %zu stages.\n",
              100.0 * (on_wall - off_wall) / off_wall, series[1].checkpoint_seconds,
              static_cast<long long>(series[2].stages_executed),
              static_cast<std::size_t>(series[2].stages_executed + series[2].stages_resumed));

  bench::JsonSink json(cfg, "checkpoint_overhead");
  for (const auto& m : series) {
    json.begin_entry();
    json.field("config", m.config);
    json.field("ranks", static_cast<std::int64_t>(nranks));
    json.field("wall_seconds", m.wall_seconds);
    json.field("chrysalis_virtual_seconds", m.chrysalis_virtual_seconds);
    json.field("checkpoint_seconds", m.checkpoint_seconds);
    json.field("stages_executed", m.stages_executed);
    json.field("stages_resumed", m.stages_resumed);
    json.field("stage_retries", m.stage_retries);
  }
  return 0;
}
