// Headline numbers (abstract + §V text) — the paper's summary table:
//   * GraphFromFasta: 4.5x at 16 nodes, 20.7x at 192 nodes vs 1-node OpenMP
//   * ReadsToTranscripts: 19.75x at 32 nodes
//   * Bowtie: ~3x at 128 nodes
//   * Chrysalis overall: >50 h -> <5 h (>10x)
//
// This bench reproduces the same ratios on the simulated cluster at the
// scaled rank counts and prints paper-vs-measured side by side.

#include "align/mpi_bowtie.hpp"
#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "fasplit/fasplit.hpp"
#include "simpi/context.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_headline_speedups", "Headline speedups: abstract / Section V summary numbers");
  cfg.flag_int("genes", 400, "genes to simulate (scales the dataset)");
  cfg.flag_int("ranks", 16, "rank count for the measured world(s)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int max_ranks = static_cast<int>(cfg.get_int("ranks"));

  bench::banner("Headline speedups", "abstract / Section V summary numbers");
  const auto w = bench::make_workload("sugarbeet_like", genes, "headline");
  bench::describe(w);

  // --- GraphFromFasta --------------------------------------------------------
  chrysalis::GraphFromFastaOptions gff;
  gff.k = bench::kK;
  gff.kernel_repeats = 200;
  gff.model_threads_per_rank = 1;
  double gff_base = 0.0;
  double gff_par = 0.0;
  chrysalis::ComponentSet components;
  for (const int nranks : {1, max_ranks}) {
    simpi::run(nranks, [&](simpi::Context& ctx) {
      const auto r = chrysalis::run_hybrid(ctx, w.contigs, w.counter, gff);
      if (ctx.rank() == 0) {
        (nranks == 1 ? gff_base : gff_par) = r.timing.total_seconds();
        if (nranks == 1) components = r.components;
      }
    });
  }

  // --- ReadsToTranscripts ----------------------------------------------------
  chrysalis::ReadsToTranscriptsOptions r2t;
  r2t.k = bench::kK;
  r2t.max_mem_reads = 20000;
  r2t.kernel_repeats = 30;
  r2t.model_threads_per_rank = 1;
  double r2t_base = 0.0;
  double r2t_par = 0.0;
  for (const int nranks : {1, max_ranks}) {
    simpi::run(nranks, [&](simpi::Context& ctx) {
      const auto r = chrysalis::run_hybrid(ctx, w.contigs, components, w.reads_path, r2t,
                                           w.work_dir);
      if (ctx.rank() == 0) (nranks == 1 ? r2t_base : r2t_par) = r.timing.total_seconds();
    });
  }

  // --- Bowtie ------------------------------------------------------------------
  align::AlignerOptions aopt;
  aopt.model_threads_per_rank = 1;  // node-count scaling, as in Figs 7-9
  const double pyfasta_model = static_cast<double>(seq::total_bases(w.contigs)) / 1.0e6;
  double bowtie_base = 0.0;
  double bowtie_par = 0.0;
  for (const int nranks : {1, max_ranks}) {
    simpi::run(nranks, [&](simpi::Context& ctx) {
      const auto r = align::distributed_bowtie(ctx, w.contigs, w.dataset.reads.reads, aopt);
      if (ctx.rank() == 0) {
        const double t = pyfasta_model + r.timing.align_seconds_max + r.timing.merge_seconds;
        (nranks == 1 ? bowtie_base : bowtie_par) = t;
      }
    });
  }

  const double chrysalis_base = gff_base + r2t_base + bowtie_base;
  const double chrysalis_par = gff_par + r2t_par + bowtie_par;

  std::printf("%-22s | %12s | %12s | %9s | %s\n", "component", "1 node (s)",
              "parallel (s)", "speedup", "paper");
  std::printf("%-22s | %12.3f | %12.3f | %8.2fx | 4.5x@16 -> 20.7x@192 nodes\n",
              "GraphFromFasta", gff_base, gff_par, gff_base / gff_par);
  std::printf("%-22s | %12.3f | %12.3f | %8.2fx | 19.75x@32 nodes\n", "ReadsToTranscripts",
              r2t_base, r2t_par, r2t_base / r2t_par);
  std::printf("%-22s | %12.3f | %12.3f | %8.2fx | ~3x@128 nodes (PyFasta-bound)\n", "Bowtie",
              bowtie_base, bowtie_par, bowtie_base / bowtie_par);
  std::printf("%-22s | %12.3f | %12.3f | %8.2fx | >50 h -> <5 h (>10x)\n",
              "Chrysalis (all three)", chrysalis_base, chrysalis_par,
              chrysalis_base / chrysalis_par);
  std::printf("\nmeasured at %d simulated nodes (one modeled thread per rank; node-count scaling).\n", max_ranks);
  return 0;
}
