#pragma once
// Shared machinery for the figure benches.
//
// Every bench binary regenerates one table/figure from the paper's
// evaluation section (see DESIGN.md's experiment index). The workload is
// the `sugarbeet_like` preset unless a figure used a different dataset.
// Node counts are scaled from the paper's 16–192 iDataPlex nodes to simpi
// ranks {1..24}; times are virtual seconds on the simulated cluster
// (measured per-rank CPU work / modeled threads + alpha-beta comm model).
//
// The host CPU clock ticks at 10 ms, so per-contig kernels are repeated
// (`kernel_repeats`) to hold per-rank loop times well above the tick; this
// also restores a realistic per-item cost — the production Chrysalis
// kernels are far heavier than this reproduction's hash-based ones.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "inchworm/inchworm.hpp"
#include "kmer/counter.hpp"
#include "pipeline/config.hpp"
#include "seq/fasta.hpp"
#include "sim/transcriptome.hpp"
#include "simpi/context.hpp"
#include "util/log.hpp"

namespace trinity::bench {

/// The shared bench flag spec: every figure bench gets --csv and --json
/// sinks plus the unified parse/--help/deprecation machinery; per-bench
/// flags are declared on the returned Config before parse_cli().
inline Config bench_config(const char* program, const char* description) {
  Config cfg(program, description);
  cfg.flag_string("csv", "", "also write the measured series as CSV to this path")
      .flag_string("json", "", "also write the series as one JSON document to this path");
  return cfg;
}

/// parse_cli + help/deprecation boilerplate; returns false when the bench
/// should exit (help shown or a ConfigError was printed, *exit_code set).
inline bool parse_or_exit(Config& cfg, int argc, const char* const* argv, int* exit_code) {
  try {
    cfg.parse_cli(argc, argv);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    *exit_code = 2;
    return false;
  }
  if (cfg.help_requested()) {
    std::fputs(cfg.help_text().c_str(), stdout);
    *exit_code = 0;
    return false;
  }
  for (const auto& note : cfg.deprecation_notes()) {
    std::fprintf(stderr, "%s: %s\n", "deprecated", note.c_str());
  }
  return true;
}

/// A prepared Chrysalis input: simulated reads, their k-mer counts, and the
/// Inchworm contigs, plus the reads written to disk for streaming stages.
struct Workload {
  sim::Dataset dataset;
  kmer::KmerCounter counter;
  std::vector<seq::Sequence> contigs;
  std::string work_dir;
  std::string reads_path;
};

inline constexpr int kK = 25;  // Trinity's default k

/// Builds the standard bench workload. `genes` scales the dataset.
inline Workload make_workload(const std::string& preset_name, std::size_t genes,
                              const std::string& tag) {
  auto preset = sim::preset(preset_name);
  if (genes > 0) preset.transcriptome.num_genes = genes;

  Workload w{sim::simulate_dataset(preset),
             kmer::KmerCounter([] {
               kmer::CounterOptions c;
               c.k = kK;
               return c;
             }()),
             {},
             "/tmp/trinity_bench_" + tag,
             ""};
  w.counter.add_sequences(w.dataset.reads.reads);

  inchworm::InchwormOptions io;
  io.k = kK;
  io.min_contig_length = kK;
  inchworm::Inchworm assembler(io);
  assembler.load_counts(w.counter.dump());
  w.contigs = assembler.assemble();

  std::filesystem::create_directories(w.work_dir);
  w.reads_path = w.work_dir + "/reads.fa";
  seq::write_fasta(w.reads_path, w.dataset.reads.reads);
  return w;
}

/// Aggregate communication/imbalance view of one simpi::run — the
/// comm-volume and skew columns the figure benches report next to their
/// timing series (semantics in docs/OBSERVABILITY.md).
struct CommSummary {
  std::uint64_t bytes_sent = 0;      ///< payload sent, summed over ranks and ops
  std::uint64_t bytes_received = 0;  ///< payload received, summed likewise
  double wait_seconds = 0.0;         ///< total time ranks sat blocked ("skew time")
  double skew = 1.0;                 ///< max/mean rank virtual time
};

inline CommSummary summarize_comm(const std::vector<simpi::RankResult>& ranks) {
  CommSummary s;
  for (const auto& r : ranks) {
    s.bytes_sent += r.comm.total_bytes_sent();
    s.bytes_received += r.comm.total_bytes_received();
    s.wait_seconds += r.comm.total_wait_seconds();
  }
  s.skew = simpi::skew_ratio(ranks);
  return s;
}

/// Optional CSV sink: when --csv <path> is given, figure benches also
/// write their series as plottable CSV.
class CsvSink {
 public:
  CsvSink(const Config& cfg, const std::string& header) {
    const auto path = cfg.get_string("csv");
    if (path.empty()) return;
    out_.open(path);
    if (out_) out_ << header << '\n';
  }
  template <typename... Ts>
  void row(const Ts&... values) {
    if (!out_.is_open()) return;
    bool first = true;
    ((out_ << (first ? "" : ",") << values, first = false), ...);
    out_ << '\n';
  }

 private:
  std::ofstream out_;
};

/// Optional JSON sink: when --json <path> is given, a bench also writes its
/// results as one machine-readable document,
///   {"bench": "<name>", "series": [{...}, ...]}
/// — one series entry per measured configuration, scalar fields only. The
/// CSV sink stays the plotting format; JSON is for the driver scripts that
/// compare runs (scripts/check.sh and CI-style regression diffing).
class JsonSink {
 public:
  JsonSink(const Config& cfg, std::string bench) : bench_(std::move(bench)) {
    const auto path = cfg.get_string("json");
    if (!path.empty()) out_.open(path);
  }

  ~JsonSink() {
    if (!out_.is_open()) return;
    out_ << "{\"bench\":\"" << escape(bench_) << "\",\"series\":[";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out_ << (i ? "," : "") << '{' << entries_[i] << '}';
    }
    out_ << "]}\n";
  }

  void begin_entry() { entries_.emplace_back(); }
  void field(const char* name, const std::string& value) {
    append(name, '"' + escape(value) + '"');
  }
  void field(const char* name, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    append(name, buf);
  }
  void field(const char* name, std::int64_t value) { append(name, std::to_string(value)); }
  void field(const char* name, bool value) { append(name, value ? "true" : "false"); }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  void append(const char* name, const std::string& rendered) {
    if (entries_.empty()) entries_.emplace_back();
    auto& entry = entries_.back();
    if (!entry.empty()) entry += ',';
    entry += '"';
    entry += name;
    entry += "\":";
    entry += rendered;
  }

  std::string bench_;
  std::vector<std::string> entries_;
  std::ofstream out_;
};

/// Prints the bench banner: which paper artifact this regenerates.
inline void banner(const char* figure, const char* description) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==================================================================\n");
}

/// Prints the workload header line.
inline void describe(const Workload& w) {
  std::printf("workload: %zu reference isoforms, %zu reads, %zu Inchworm contigs (%zu bp)\n\n",
              w.dataset.transcriptome.transcripts.size(), w.dataset.reads.reads.size(),
              w.contigs.size(), seq::total_bases(w.contigs));
}

}  // namespace trinity::bench
