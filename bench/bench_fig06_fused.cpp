// Figure 6 — "Alignment of reconstructed transcripts from both versions of
// Trinity to the reference transcripts; number of reconstructed
// genes/isoforms in full-length as 'fused' transcript for Schizophrenia
// (a, c) and Drosophila (b, d) datasets."
//
// Paper method (§IV test 2): a "fused" transcript is a single
// reconstruction containing multiple full-length reference transcripts
// from different genes end to end — likely false positives caused by
// overlapping UTRs, but still counted because they are full length. The
// simulator plants shared-UTR overlaps between adjacent genes to induce
// exactly this failure mode. Expected shape: both versions fuse a small,
// statistically indistinguishable number of transcripts.

#include "bench_common.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "util/stats.hpp"
#include "validate/validate.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_fig06_fused", "Figure 6: 'fused' reconstructed genes/isoforms vs reference");
  cfg.flag_int("runs", 3, "repeated runs per pipeline version");
  cfg.flag_int("ranks", 8, "rank count for the measured world(s)");
  cfg.flag_int("genes", static_cast<std::int64_t>(60), "genes to simulate (scales the dataset)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const int runs = static_cast<int>(cfg.get_int("runs"));
  const int nranks = static_cast<int>(cfg.get_int("ranks"));

  bench::banner("Figure 6", "'fused' reconstructed genes/isoforms vs reference");

  for (const char* dataset : {"schizophrenia_like", "drosophila_like"}) {
    auto preset = sim::preset(dataset);
    preset.transcriptome.num_genes =
        static_cast<std::size_t>(cfg.get_int("genes"));
    // Raise the shared-UTR rate so fusions are reliably observable at this
    // scale (the paper's real genomes provide them naturally).
    preset.transcriptome.shared_utr_probability = 0.35;
    const auto data = sim::simulate_dataset(preset);
    std::printf("\n[%s] %zu genes, %zu reference isoforms, %zu reads\n", dataset,
                data.transcriptome.genes.size(), data.transcriptome.transcripts.size(),
                data.reads.reads.size());

    std::vector<double> orig_genes, par_genes, orig_isos, par_isos;
    for (int r = 0; r < runs; ++r) {
      for (const bool hybrid : {false, true}) {
        pipeline::PipelineOptions o;
        o.k = bench::kK;
        o.nranks = hybrid ? nranks : 1;
        o.run_seed = static_cast<std::uint64_t>(r + 1) + (hybrid ? 7000 : 0);
        o.work_dir = std::string("/tmp/trinity_bench_fig06_") + dataset;
        const auto result = pipeline::run_pipeline(data.reads.reads, o);
        const auto cmp = validate::compare_to_reference(
            result.transcripts, data.transcriptome.transcripts,
            data.transcriptome.gene_of_transcript);
        (hybrid ? par_genes : orig_genes).push_back(static_cast<double>(cmp.fused_genes));
        (hybrid ? par_isos : orig_isos).push_back(static_cast<double>(cmp.fused_isoforms));
      }
    }

    auto row = [&](const char* label, const std::vector<double>& orig,
                   const std::vector<double>& par) {
      const auto so = util::summarize(orig);
      const auto sp = util::summarize(par);
      const auto t = util::welch_t_test(orig, par);
      std::printf("  %-22s original %6.1f [%g..%g]   parallel %6.1f [%g..%g]   p=%.3f %s\n",
                  label, so.mean, so.min, so.max, sp.mean, sp.min, sp.max, t.p_two_sided,
                  t.significant_at_5pct ? "(SIGNIFICANT!)" : "(no sig. diff.)");
    };
    row("fused genes", orig_genes, par_genes);
    row("fused isoforms", orig_isos, par_isos);
  }
  std::printf("\npaper: fused counts are small and statistically indistinguishable between\n"
              "the original and the MPI+OpenMP versions.\n");
  return 0;
}
