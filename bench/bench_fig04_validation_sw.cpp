// Figure 4 — "Alignment of the reconstructed transcripts from parallelized
// Trinity to the ones from original Trinity using Smith-Waterman algorithm
// in FASTA program using whitefly dataset."
//
// Paper method (§IV): ten repeated runs of each version (the output is
// slightly nondeterministic); every transcript of one set is aligned
// against the other set and bucketed into (a) 100% identity over the full
// length, (b) <100% identity over the full length, (c) partial-length,
// with (d) the identity distribution inside (c). The "Parallel" series is
// parallel-vs-original; the "Original" series is original-vs-original (the
// baseline level of run-to-run variation). Expected shape: the two series
// are statistically indistinguishable (two-sample t-test).

#include "bench_common.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "util/stats.hpp"
#include "validate/validate.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_fig04_validation_sw", "Figure 4: all-to-all SW validation, whitefly dataset");
  cfg.flag_int("genes", 60, "genes to simulate (scales the dataset)");
  cfg.flag_int("runs", 4, "repeated runs per pipeline version");
  cfg.flag_int("ranks", 8, "rank count for the measured world(s)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int runs = static_cast<int>(cfg.get_int("runs"));
  const int nranks = static_cast<int>(cfg.get_int("ranks"));

  bench::banner("Figure 4", "all-to-all SW validation, whitefly dataset");

  auto preset = sim::preset("whitefly_like");
  preset.transcriptome.num_genes = genes;
  const auto data = sim::simulate_dataset(preset);
  std::printf("workload: %zu reference isoforms, %zu reads; %d runs per version\n\n",
              data.transcriptome.transcripts.size(), data.reads.reads.size(), runs);

  auto run_once = [&](int ranks, std::uint64_t seed) {
    pipeline::PipelineOptions o;
    o.k = bench::kK;
    o.nranks = ranks;
    o.run_seed = seed;
    o.work_dir = "/tmp/trinity_bench_fig04";
    return pipeline::run_pipeline(data.reads.reads, o).transcripts;
  };

  // Run-to-run variation: the run seed salts Trinity's nondeterministic
  // tie-breaks (Inchworm seed order and extension ties, Butterfly path
  // order). Our pooling stages are deliberately order-independent, so the
  // pipeline is far more confluent than real Trinity — runs often come out
  // bitwise identical. To also exercise the (b)/(c) categories the way the
  // paper's stochastic runs did, each repeated run additionally drops a
  // random 1% of the reads (an input jackknife), which perturbs coverage
  // the way scheduling noise perturbed Trinity's heuristics.
  auto jackknife = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<seq::Sequence> kept;
    kept.reserve(data.reads.reads.size());
    for (const auto& read : data.reads.reads) {
      if (!rng.bernoulli(0.01)) kept.push_back(read);
    }
    return kept;
  };
  auto run_jack = [&](int ranks, std::uint64_t seed) {
    pipeline::PipelineOptions o;
    o.k = bench::kK;
    o.nranks = ranks;
    o.run_seed = seed;
    o.work_dir = "/tmp/trinity_bench_fig04";
    return pipeline::run_pipeline(jackknife(seed), o).transcripts;
  };
  (void)run_once;

  std::vector<std::vector<seq::Sequence>> original;
  std::vector<std::vector<seq::Sequence>> parallel;
  for (int r = 0; r < runs; ++r) {
    original.push_back(run_jack(1, static_cast<std::uint64_t>(r) + 1));
    parallel.push_back(run_jack(nranks, static_cast<std::uint64_t>(r) + 1001));
  }

  // Aggregate categories over run pairs, exactly one comparison per run:
  // run i of the query series vs run i of the original series (offset by
  // one for original-vs-original so a run is never compared to itself).
  auto aggregate = [&](const std::vector<std::vector<seq::Sequence>>& queries, int offset) {
    validate::CategoryCounts total;
    std::vector<double> identical_fraction;
    for (int r = 0; r < runs; ++r) {
      const auto& target = original[static_cast<std::size_t>((r + offset) % runs)];
      const auto c = validate::all_to_all_categories(queries[static_cast<std::size_t>(r)],
                                                     target);
      total.full_identical += c.full_identical;
      total.full_diverged += c.full_diverged;
      total.partial += c.partial;
      total.unmatched += c.unmatched;
      total.partial_identities.insert(total.partial_identities.end(),
                                      c.partial_identities.begin(),
                                      c.partial_identities.end());
      identical_fraction.push_back(static_cast<double>(c.full_identical) /
                                   static_cast<double>(std::max<std::size_t>(c.total(), 1)));
    }
    return std::pair(total, identical_fraction);
  };

  const auto [par_counts, par_metric] = aggregate(parallel, 0);
  const auto [orig_counts, orig_metric] = aggregate(original, 1);

  auto print_series = [&](const char* label, const validate::CategoryCounts& c) {
    std::printf("%-10s (a) full 100%%: %5zu   (b) full <100%%: %5zu   (c) partial: %5zu   "
                "unmatched: %4zu\n",
                label, c.full_identical, c.full_diverged, c.partial, c.unmatched);
    const auto id_stats = util::summarize(c.partial_identities);
    std::printf("%-10s (d) partial identities: n=%zu mean=%.3f min=%.3f max=%.3f\n", "",
                id_stats.n, id_stats.mean, id_stats.min, id_stats.max);
  };
  print_series("Parallel", par_counts);
  print_series("Original", orig_counts);

  const auto t = util::welch_t_test(orig_metric, par_metric);
  std::printf("\ntwo-sample t-test on the full-identical fraction: t=%.3f p=%.3f -> %s\n",
              t.t, t.p_two_sided,
              t.significant_at_5pct ? "SIGNIFICANT (deviates from the paper!)"
                                    : "no significant difference (matches the paper)");
  return 0;
}
