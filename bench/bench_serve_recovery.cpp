// bench_serve_recovery: journal cost and restart-recovery latency.
//
// Two questions the PR 8 acceptance bar asks of the durable job journal:
//
//  1. What does journaling cost the serving hot path? Measured indirectly
//     by bench_serve --journal / --no-journal; here we measure the raw
//     append+fsync rate, which bounds the per-transition overhead.
//  2. How fast does a restarted server come back? A crashed server's
//     startup replays its whole journal, so recovery time grows with
//     journal length — this bench replays synthetic journals of
//     increasing length and reports replay wall time and events/second,
//     plus a full end-to-end recovery (construct a JobServer over a root
//     with a journaled in-flight job and time it to first schedulable
//     state).
//
// Run:
//   ./build/bench/bench_serve_recovery              # writes BENCH_serve_recovery.json
//   ./build/bench/bench_serve_recovery --events 20000

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "util/timer.hpp"

namespace {

trinity::serve::JournalEvent make_event(const char* type, int job, int attempts) {
  trinity::serve::JournalEvent ev;
  ev.event = type;
  ev.job_id = "job-" + std::to_string(job);
  ev.tenant = "tenant-" + std::to_string(job % 4);
  ev.seq = job + 1;
  ev.attempts = attempts;
  return ev;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("bench_serve_recovery",
             "journal append/replay rates and restart recovery latency");
  cfg.flag_int("events", 10000, "journal events for the append/replay sweep")
      .flag_int("genes", 8, "genes in the simulated recovery workload")
      .flag_string("json", "BENCH_serve_recovery.json", "summary JSON destination");
  int exit_code = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &exit_code)) return exit_code;

  const int events = static_cast<int>(cfg.get_int("events"));
  bench::banner("BENCH serve_recovery",
                "durable journal append/replay cost and restart latency");

  const bench::Workload workload = bench::make_workload(
      "tiny", static_cast<std::size_t>(cfg.get_int("genes")), "serve_recovery");

  // --- 1. append+fsync rate: the per-transition serving overhead bound ----
  // The workload dir is deterministic and survives across invocations, and
  // JobJournal opens append-mode — clear stale state so reruns measure
  // fresh journals instead of appending onto the previous run's.
  const std::string append_path = workload.work_dir + "/append_journal.jsonl";
  std::filesystem::remove(append_path);
  util::Timer append_timer;
  {
    serve::JobJournal journal(append_path);
    for (int i = 0; i < events; ++i) {
      journal.append(make_event(i % 3 == 0 ? "dispatch" : "requeue", i / 3, i % 3));
    }
  }
  const double append_s = append_timer.seconds();
  const double appends_per_s = events / append_s;
  std::printf("append+fsync: %d event(s) in %.3f s  (%.0f events/s, %.1f us/event)\n",
              events, append_s, appends_per_s, 1e6 * append_s / events);

  // --- 2. replay rate vs journal length ----------------------------------
  std::printf("\n%10s %12s %14s\n", "events", "replay(s)", "events/s");
  std::vector<std::pair<int, double>> replay_points;
  for (const int n : {events / 100, events / 10, events}) {
    if (n <= 0) continue;
    const std::string path =
        workload.work_dir + "/replay_" + std::to_string(n) + ".jsonl";
    std::filesystem::remove(path);
    {
      serve::JobJournal journal(path);
      for (int i = 0; i < n; ++i) journal.append(make_event("dispatch", i, 1));
    }
    util::Timer replay_timer;
    const serve::JournalReplay replay = serve::JobJournal::replay(path);
    const double replay_s = replay_timer.seconds();
    if (static_cast<int>(replay.events.size()) != n) {
      std::printf("replay recovered %zu/%d events — journal bug\n",
                  replay.events.size(), n);
      return 1;
    }
    replay_points.emplace_back(n, replay_s);
    std::printf("%10d %12.4f %14.0f\n", n, replay_s, n / replay_s);
  }

  // --- 3. end-to-end restart: recover one in-flight job and finish it -----
  // A completed run's work dir plus a journal that stops at "dispatch" is
  // exactly the post-kill-9 state: construction replays the journal, the
  // recovered dispatch resumes every checkpointed stage.
  const std::string root = workload.work_dir + "/serve_root";
  std::filesystem::remove_all(root);
  serve::JobSpec spec;
  spec.job_id = "recovered";
  spec.tenant = "tenant-0";
  spec.reads_path = workload.reads_path;
  spec.options.k = 15;
  spec.options.nranks = 2;
  spec.options.omp_threads = 1;
  spec.options.trace_sample_interval_ms = 0;

  serve::ServerOptions server_options;
  server_options.total_ranks = 4;
  server_options.root_dir = root;
  double first_run_s = 0.0;
  {
    serve::JobServer server(server_options);
    serve::JobSpec first = spec;
    util::Timer first_timer;
    if (!server.submit(std::move(first)).accepted()) {
      std::printf("unexpected reject\n");
      return 1;
    }
    server.drain();
    first_run_s = first_timer.seconds();
  }
  // Truncate the journal to submit+dispatch: the server "died" mid-run.
  const std::string journal_path = root + "/journal.jsonl";
  const serve::JournalReplay full = serve::JobJournal::replay(journal_path);
  std::uint64_t cut = 0;
  {
    serve::JobJournal scratch(journal_path + ".cut");
    scratch.append(full.events.at(0));
    scratch.append(full.events.at(1));
    cut = std::filesystem::file_size(journal_path + ".cut");
  }
  std::filesystem::resize_file(journal_path, cut);

  util::Timer recover_timer;
  serve::JobServer restarted(server_options);
  const double construct_s = recover_timer.seconds();
  restarted.drain();
  const double recovery_total_s = recover_timer.seconds();
  restarted.shutdown();
  bool recovered_ok = false;
  for (const auto& job : restarted.jobs()) {
    if (job.job_id == "recovered") {
      recovered_ok = job.state == serve::JobState::kCompleted && job.recovered;
    }
  }
  std::printf("\nfirst run: %.3f s; restart: construct+replay %.4f s, "
              "recovered job finished %.3f s after construction (%s)\n",
              first_run_s, construct_s, recovery_total_s - construct_s,
              recovered_ok ? "completed, resumed from checkpoints" : "FAILED");

  bench::JsonSink json(cfg, "serve_recovery");
  json.begin_entry();
  json.field("events", static_cast<std::int64_t>(events));
  json.field("append_s", append_s);
  json.field("appends_per_s", appends_per_s);
  for (const auto& [n, s] : replay_points) {
    json.field(("replay_" + std::to_string(n) + "_s").c_str(), s);
  }
  json.field("first_run_s", first_run_s);
  json.field("restart_construct_s", construct_s);
  json.field("restart_finish_s", recovery_total_s - construct_s);
  json.field("recovered_ok", recovered_ok);
  return recovered_ok ? 0 : 1;
}
