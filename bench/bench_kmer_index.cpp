// Microbenchmark behind the flat-index tentpole: FlatKmerIndex vs the
// std::unordered_map<KmerCode, V> it replaced, on the exact access patterns
// of the fig07 workload — the contig_kmer_multiplicity build (one insert
// per contig (k-1)-mer) and the weld-harvest / assign_read probe loop (one
// lookup per k-mer, hit-heavy for contigs, miss-heavy for reads).
//
// Both containers consume the same pre-extracted canonical code lists, so
// the measured difference is pure hash-table work (host wall time; best of
// --repeats). The checksum/size cross-check pins behavioural parity, and
// --min-speedup (default 1.0) makes the binary fail when the flat index
// stops beating the baseline — the scripts/check.sh perf gate.
//
// By default the series is written to BENCH_kmer_index.json in the working
// directory ({"bench":"kmer_index","series":[...]}) so repeated runs leave
// a comparable before/after trail.

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "kmer/flat_index.hpp"
#include "seq/kmer.hpp"

namespace {

using trinity::seq::KmerCode;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Extracts canonical (k-1)-mer codes per sequence — the shared preprocessing
/// both containers consume (mirrors the cached-extraction overlap path).
std::vector<std::vector<KmerCode>> extract_codes(
    const std::vector<trinity::seq::Sequence>& seqs, int k) {
  const trinity::seq::KmerCodec codec(k - 1);
  std::vector<std::vector<KmerCode>> out;
  out.reserve(seqs.size());
  for (const auto& s : seqs) {
    std::vector<KmerCode> codes;
    for (const auto& occ : codec.extract_canonical(s.bases)) codes.push_back(occ.code);
    out.push_back(std::move(codes));
  }
  return out;
}

/// One measured build+probe pass: `Index` is either container. The build is
/// contig_kmer_multiplicity's loop (count each contig code); the probe sums
/// hits over the read codes, like assign_read's bundle-map scan.
struct PassResult {
  double build_s = 0.0;
  double probe_s = 0.0;
  std::size_t entries = 0;
  std::uint64_t checksum = 0;
};

template <typename Index, typename Lookup>
PassResult run_pass(const std::vector<std::vector<KmerCode>>& contig_codes,
                    const std::vector<std::vector<KmerCode>>& read_codes,
                    std::size_t reserve_hint, Lookup&& lookup) {
  PassResult r;
  double t0 = now_seconds();
  Index counts;
  counts.reserve(reserve_hint);
  for (const auto& codes : contig_codes) {
    for (const KmerCode code : codes) ++counts[code];
  }
  r.build_s = now_seconds() - t0;
  r.entries = counts.size();

  t0 = now_seconds();
  std::uint64_t sum = 0;
  for (const auto& codes : read_codes) {
    for (const KmerCode code : codes) sum += lookup(counts, code);
  }
  r.probe_s = now_seconds() - t0;
  r.checksum = sum;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("bench_kmer_index",
             "flat open-addressing k-mer index vs std::unordered_map on the fig07 workload");
  cfg.flag_int("genes", 400, "genes to simulate (scales the dataset)")
      .flag_int("repeats", 5, "timed repetitions per container (minimum kept)")
      .flag_double("min-speedup", 1.0,
                   "fail (exit 1) unless the flat index's combined speedup reaches this; "
                   "0 disables the gate")
      .flag_string("csv", "", "also write the measured series as CSV to this path")
      .flag_string("json", "BENCH_kmer_index.json",
                   "write the series as one JSON document to this path");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;

  bench::banner("kmer-index", "flat open-addressing index vs std::unordered_map");
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int repeats = static_cast<int>(cfg.get_int("repeats"));
  const auto w = bench::make_workload("sugarbeet_like", genes, "kmer_index");
  bench::describe(w);

  const auto contig_codes = extract_codes(w.contigs, bench::kK);
  const auto read_codes = extract_codes(w.dataset.reads.reads, bench::kK);
  const std::size_t reserve_hint = seq::total_bases(w.contigs);
  std::size_t probes = 0;
  for (const auto& codes : read_codes) probes += codes.size();

  // Best-of-N on each container; both get the same reserve-from-count hint.
  PassResult flat, baseline;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto f = run_pass<kmer::FlatKmerIndex<std::uint32_t>>(
        contig_codes, read_codes, reserve_hint,
        [](const kmer::FlatKmerIndex<std::uint32_t>& idx, KmerCode code) -> std::uint64_t {
          const std::uint32_t* hit = idx.lookup(code);
          return hit != nullptr ? *hit : 0;
        });
    const auto b = run_pass<std::unordered_map<KmerCode, std::uint32_t>>(
        contig_codes, read_codes, reserve_hint,
        [](const std::unordered_map<KmerCode, std::uint32_t>& idx,
           KmerCode code) -> std::uint64_t {
          const auto it = idx.find(code);
          return it != idx.end() ? it->second : 0;
        });
    if (rep == 0 || f.build_s + f.probe_s < flat.build_s + flat.probe_s) flat = f;
    if (rep == 0 || b.build_s + b.probe_s < baseline.build_s + baseline.probe_s) baseline = b;
  }

  if (flat.entries != baseline.entries || flat.checksum != baseline.checksum) {
    std::fprintf(stderr,
                 "bench_kmer_index: containers disagree (flat %zu entries / checksum %llu, "
                 "unordered_map %zu / %llu)\n",
                 flat.entries, static_cast<unsigned long long>(flat.checksum),
                 baseline.entries, static_cast<unsigned long long>(baseline.checksum));
    return 1;
  }

  const double build_speedup = baseline.build_s / flat.build_s;
  const double probe_speedup = baseline.probe_s / flat.probe_s;
  const double combined_speedup =
      (baseline.build_s + baseline.probe_s) / (flat.build_s + flat.probe_s);

  bench::CsvSink csv(cfg, "impl,build_s,probe_s,entries,probes,checksum");
  bench::JsonSink json(cfg, "kmer_index");
  std::printf("%14s | %10s %10s | %10s %12s\n", "impl", "build(s)", "probe(s)", "entries",
              "probes");
  struct Row {
    const char* impl;
    const PassResult* r;
  };
  for (const Row& row : {Row{"flat", &flat}, Row{"unordered_map", &baseline}}) {
    std::printf("%14s | %10.4f %10.4f | %10zu %12zu\n", row.impl, row.r->build_s,
                row.r->probe_s, row.r->entries, probes);
    csv.row(row.impl, row.r->build_s, row.r->probe_s, row.r->entries, probes,
            row.r->checksum);
    json.begin_entry();
    json.field("impl", std::string(row.impl));
    json.field("build_s", row.r->build_s);
    json.field("probe_s", row.r->probe_s);
    json.field("entries", static_cast<std::int64_t>(row.r->entries));
    json.field("probes", static_cast<std::int64_t>(probes));
    json.field("checksum", static_cast<std::int64_t>(row.r->checksum));
    json.field("build_speedup", row.r == &flat ? build_speedup : 1.0);
    json.field("probe_speedup", row.r == &flat ? probe_speedup : 1.0);
    json.field("combined_speedup", row.r == &flat ? combined_speedup : 1.0);
  }
  std::printf("\nflat vs unordered_map: build %.2fx, probe %.2fx, combined %.2fx\n",
              build_speedup, probe_speedup, combined_speedup);

  const double min_speedup = cfg.get_double("min-speedup");
  if (min_speedup > 0.0 && combined_speedup < min_speedup) {
    std::fprintf(stderr,
                 "bench_kmer_index: combined speedup %.2fx is below --min-speedup %.2f\n",
                 combined_speedup, min_speedup);
    return 1;
  }
  return 0;
}
