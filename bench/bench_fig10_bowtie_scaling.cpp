// Figure 10 — "Results of parallel Bowtie implementation showing the time
// taken in Bowtie and time taken by PyFasta to partition the Fasta file."
//
// Paper shape (§V.C): splitting the Inchworm-contig FASTA with PyFasta is
// single-threaded and roughly constant in node count; the per-node Bowtie
// alignment shrinks with more nodes; beyond a crossover the split costs
// MORE than the alignment, capping the overall speedup at ~3x even on 128
// nodes.
//
// PyFasta itself is Python; its per-byte cost is modeled as
// bases / PYFASTA_BYTES_PER_SECOND on top of the measured C++ split, a
// calibration documented in EXPERIMENTS.md.

#include "align/mpi_bowtie.hpp"
#include "bench_common.hpp"
#include "fasplit/fasplit.hpp"
#include "simpi/context.hpp"
#include "util/timer.hpp"

namespace {
// Single-threaded CPython pushes on the order of 1 MB/s through a
// parse-and-rewrite loop of this kind.
constexpr double kPyfastaBytesPerSecond = 1.0e6;
}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_fig10_bowtie_scaling", "Figure 10: distributed Bowtie: PyFasta split vs alignment time");
  cfg.flag_int("genes", 400, "genes to simulate (scales the dataset)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));

  bench::banner("Figure 10", "distributed Bowtie: PyFasta split vs alignment time");
  const auto w = bench::make_workload("sugarbeet_like", genes, "fig10");
  bench::describe(w);

  align::AlignerOptions options;
  options.model_threads_per_rank = 1;  // node-count scaling, as in Figs 7-9
  const std::string contigs_path = w.work_dir + "/inchworm.fa";
  seq::write_fasta(contigs_path, w.contigs);
  const double pyfasta_model =
      static_cast<double>(seq::total_bases(w.contigs)) / kPyfastaBytesPerSecond;

  bench::CsvSink csv(cfg, "nodes,pyfasta,bowtie_max,bowtie_min,total,speedup,comm_bytes,skew");
  bench::JsonSink json(cfg, "fig10_bowtie_scaling");
  std::printf("%6s | %11s %12s %11s | %9s | %8s | %10s %6s\n", "nodes", "pyfasta(s)",
              "bowtie_max(s)", "bowtie_min(s)", "total(s)", "speedup", "comm(B)", "skew");
  double base_total = 0.0;
  for (const int nranks : {1, 2, 4, 8, 16}) {
    // The serial PyFasta step: write the per-part FASTA files, plus the
    // modeled Python interpreter cost.
    util::Timer split_wall;
    (void)fasplit::split_fasta_file(contigs_path, w.work_dir + "/part", nranks);
    const double split_seconds = split_wall.seconds() + pyfasta_model;

    align::DistributedBowtieTiming timing;
    const auto ranks = simpi::run(nranks, [&](simpi::Context& ctx) {
      const auto r = align::distributed_bowtie(ctx, w.contigs, w.dataset.reads.reads, options);
      if (ctx.rank() == 0) timing = r.timing;
    });
    const auto comm = bench::summarize_comm(ranks);
    const double total = split_seconds + timing.align_seconds_max + timing.merge_seconds;
    if (nranks == 1) base_total = total;
    std::printf("%6d | %11.3f %12.3f %11.3f | %9.3f | %7.2fx | %10llu %6.2f\n", nranks,
                split_seconds, timing.align_seconds_max, timing.align_seconds_min, total,
                base_total / total, static_cast<unsigned long long>(comm.bytes_received),
                comm.skew);
    csv.row(nranks, split_seconds, timing.align_seconds_max, timing.align_seconds_min, total,
            base_total / total, comm.bytes_received, comm.skew);
    json.begin_entry();
    json.field("nodes", static_cast<std::int64_t>(nranks));
    json.field("pyfasta_s", split_seconds);
    json.field("bowtie_max", timing.align_seconds_max);
    json.field("bowtie_min", timing.align_seconds_min);
    json.field("total_s", total);
    json.field("speedup", base_total / total);
    json.field("comm_bytes_sent", static_cast<std::int64_t>(comm.bytes_sent));
    json.field("comm_bytes_received", static_cast<std::int64_t>(comm.bytes_received));
    json.field("comm_wait_s", comm.wait_seconds);
    json.field("skew_ratio", comm.skew);
  }
  std::printf("\npaper: the PyFasta split costs more than the alignment itself at high node\n"
              "counts, capping the end-to-end Bowtie speedup at ~3x (128 nodes vs the\n"
              ">8 h single-node run).\n");
  return 0;
}
