// Figure 8 — "Breakdown of GraphFromFasta times showing the times taken in
// loop 1, 2 and non-parallel regions. All times are normalized to 100%."
//
// Paper shape: the two parallel loops account for 92.4% of GraphFromFasta
// at 16 nodes but the non-parallel regions (the shared-k-mer setup, weld
// pooling/dedup, pairing and clustering) grow to ~63% of the total at 128
// nodes — Amdahl's law in action; at 192 nodes loop-2 imbalance pushes the
// loop share back up.

#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "simpi/context.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_fig08_gff_breakdown", "Figure 8: GraphFromFasta time breakdown, normalized to 100%");
  cfg.flag_int("genes", 400, "genes to simulate (scales the dataset)");
  cfg.flag_int("kernel-repeats", 60, "per-item kernel repeats (cost-model calibration)");
  cfg.flag_int("trials", 2, "trials per configuration (minimum kept)");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int repeats = static_cast<int>(cfg.get_int("kernel-repeats"));

  bench::banner("Figure 8", "GraphFromFasta time breakdown, normalized to 100%");
  const auto w = bench::make_workload("sugarbeet_like", genes, "fig08");
  bench::describe(w);

  chrysalis::GraphFromFastaOptions options;
  options.k = bench::kK;
  options.kernel_repeats = repeats;
  // Pure node-count scaling: one modeled thread per rank keeps the
  // loop-to-serial time ratio consistent (the serial regions are not
  // divided by a thread count either).
  options.model_threads_per_rank = 1;

  bench::JsonSink json(cfg, "fig08_gff_breakdown");
  std::printf("%6s | %9s %9s %14s | %9s | %6s\n", "nodes", "loop1(%)", "loop2(%)",
              "nonparallel(%)", "total(s)", "skew");
  const int trials = static_cast<int>(cfg.get_int("trials"));
  for (const int nranks : {1, 2, 4, 8, 16, 24}) {
    chrysalis::GffTiming timing;
    bench::CommSummary comm;
    for (int trial = 0; trial < trials; ++trial) {
      chrysalis::GffTiming t;
      const auto ranks = simpi::run(nranks, [&](simpi::Context& ctx) {
        const auto r = chrysalis::run_hybrid(ctx, w.contigs, w.counter, options);
        if (ctx.rank() == 0) t = r.timing;
      });
      if (trial == 0 || t.total_seconds() < timing.total_seconds()) {
        timing = t;
        comm = bench::summarize_comm(ranks);
      }
    }
    const double total = timing.total_seconds();
    const double loop1 = timing.loop1.max() / total * 100.0;
    const double loop2 = timing.loop2.max() / total * 100.0;
    std::printf("%6d | %9.1f %9.1f %14.1f | %9.3f | %6.2f\n", nranks, loop1, loop2,
                100.0 - loop1 - loop2, total, comm.skew);
    json.begin_entry();
    json.field("nodes", static_cast<std::int64_t>(nranks));
    json.field("loop1_pct", loop1);
    json.field("loop2_pct", loop2);
    json.field("nonparallel_pct", 100.0 - loop1 - loop2);
    json.field("total_s", total);
    json.field("comm_bytes_received", static_cast<std::int64_t>(comm.bytes_received));
    json.field("comm_wait_s", comm.wait_seconds);
    json.field("skew_ratio", comm.skew);
  }
  std::printf("\npaper: loops = 92.4%% of the total at 16 nodes, falling to 36.7%% at 128\n"
              "nodes as the non-parallel share grows; the share of the loops rises again\n"
              "at 192 nodes due to loop-2 load imbalance.\n");
  return 0;
}
