// What input tolerance costs — parser throughput under each ParsePolicy
// over a clean read file and a corrupted copy (a percentage of records
// damaged with the corpus categories: flipped headers, bad separators,
// invalid bases, quality-length mismatches).
//
// Strict mode over the corrupted file throws on the first malformed
// record, so its "corrupted" row reports the failure location instead of
// a throughput. Tolerant and repair complete; their rows report the exact
// quarantine/repair counts alongside the reads/s cost of scrubbing.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/error.hpp"
#include "util/timer.hpp"

namespace {

struct Measurement {
  std::string policy;
  std::string input;  // "clean" or "corrupted"
  bool completed = false;
  double wall_seconds = 0.0;
  std::int64_t records_ok = 0;
  std::int64_t quarantined = 0;
  std::int64_t repaired = 0;
  std::string error;  // strict-mode failure location
};

/// Writes `reads` as FASTQ, damaging every `corrupt_every`-th record
/// (0 = clean) by rotating through the malformed-record categories.
std::string write_reads(const std::vector<trinity::seq::Sequence>& reads,
                        const std::string& path, std::size_t corrupt_every) {
  std::ofstream out(path, std::ios::binary);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto& r = reads[i];
    std::string header = "@" + r.name;
    std::string bases = r.bases;
    std::string sep = "+";
    std::string quality(r.bases.size(), 'F');
    if (corrupt_every > 0 && i % corrupt_every == corrupt_every - 1) {
      switch ((i / corrupt_every) % 4) {
        case 0: header[0] = 'B'; break;                    // missing_header
        case 1: sep = "x"; break;                          // bad_separator
        case 2: bases[bases.size() / 2] = '!'; break;      // invalid_character
        case 3: quality.pop_back(); break;                 // quality_length_mismatch
      }
    }
    out << header << '\n' << bases << '\n' << sep << '\n' << quality << '\n';
  }
  return path;
}

Measurement measure(const std::string& path, const std::string& input,
                    trinity::seq::ParsePolicy policy) {
  Measurement m;
  m.policy = trinity::seq::to_string(policy);
  m.input = input;
  trinity::util::Timer wall;
  try {
    trinity::io::ParseDiagnostics diag;
    const auto seqs = trinity::seq::read_all(path, policy, &diag);
    m.completed = true;
    m.records_ok = static_cast<std::int64_t>(seqs.size());
    m.quarantined = static_cast<std::int64_t>(diag.records_quarantined());
    m.repaired = static_cast<std::int64_t>(diag.records_repaired);
  } catch (const trinity::io::ParseError& e) {
    m.error = std::string(trinity::io::to_string(e.category())) + " at line " +
              std::to_string(e.line());
  }
  m.wall_seconds = wall.seconds();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_parse_tolerance", "Parse tolerance: FASTA/FASTQ reader throughput per policy, clean vs corrupted input");
  cfg.flag_int("genes", 200, "genes to simulate (scales the dataset)");
  cfg.flag_int("corrupt-every", 100, "corrupt every Nth simulated record");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const auto corrupt_every = static_cast<std::size_t>(cfg.get_int("corrupt-every"));

  bench::banner("Parse tolerance",
                "FASTA/FASTQ reader throughput per policy, clean vs corrupted input");

  auto preset = sim::preset("sugarbeet_like");
  preset.transcriptome.num_genes = genes;
  const auto data = sim::simulate_dataset(preset);
  const auto& reads = data.reads.reads;

  const std::string dir = "/tmp/trinity_bench_parse";
  std::filesystem::create_directories(dir);
  const auto clean = write_reads(reads, dir + "/clean.fq", 0);
  const auto corrupted = write_reads(reads, dir + "/corrupted.fq", corrupt_every);
  std::printf("workload: %zu reads; 1 in %zu records damaged in the corrupted copy\n\n",
              reads.size(), corrupt_every);

  std::vector<Measurement> series;
  for (const seq::ParsePolicy policy :
       {seq::ParsePolicy::kStrict, seq::ParsePolicy::kTolerant, seq::ParsePolicy::kRepair}) {
    series.push_back(measure(clean, "clean", policy));
    series.push_back(measure(corrupted, "corrupted", policy));
  }

  std::printf("%-9s %-10s %10s %12s %10s %12s %9s\n", "policy", "input", "wall(s)",
              "reads/s", "ok", "quarantined", "repaired");
  for (const auto& m : series) {
    if (m.completed) {
      const double rate =
          m.wall_seconds > 0.0 ? static_cast<double>(m.records_ok) / m.wall_seconds : 0.0;
      std::printf("%-9s %-10s %10.4f %12.0f %10lld %12lld %9lld\n", m.policy.c_str(),
                  m.input.c_str(), m.wall_seconds, rate,
                  static_cast<long long>(m.records_ok),
                  static_cast<long long>(m.quarantined),
                  static_cast<long long>(m.repaired));
    } else {
      std::printf("%-9s %-10s %10.4f   ParseError: %s\n", m.policy.c_str(), m.input.c_str(),
                  m.wall_seconds, m.error.c_str());
    }
  }

  bench::JsonSink json(cfg, "parse_tolerance");
  for (const auto& m : series) {
    json.begin_entry();
    json.field("policy", m.policy);
    json.field("input", m.input);
    json.field("completed", static_cast<std::int64_t>(m.completed ? 1 : 0));
    json.field("wall_seconds", m.wall_seconds);
    json.field("records_ok", m.records_ok);
    json.field("records_quarantined", m.quarantined);
    json.field("records_repaired", m.repaired);
  }
  return 0;
}
