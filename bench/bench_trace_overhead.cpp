// Tracing overhead guard: with tracing disabled (the default), every
// instrumented hook must collapse to one relaxed atomic load, keeping the
// end-to-end cost on a real workload under 2%.
//
// Two measurements:
//   1. Microbench of the disabled hook (SpanScope construct/destruct with no
//      recorder installed), in ns/call against an empty-loop baseline.
//   2. The Figure 7 workload (hybrid GraphFromFasta) run untraced, counting
//      how many hook invocations a traced run of the same workload performs.
//      Projected overhead = hook_cost * hook_count / untraced_wall.
//
// The projection is the honest comparison available inside one binary: the
// instrumentation cannot be compiled out, so "0% vs this build" is
// unmeasurable, but hook-cost x hook-count bounds what the hooks add. The
// bench exits non-zero when the projection crosses the 2% budget, which is
// how scripts/check.sh gates regressions (e.g. someone adding allocation or
// a lock to the disabled path).

#include <cstdint>
#include <cstdlib>

#include "bench_common.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "trace/span_recorder.hpp"
#include "util/timer.hpp"

namespace {

// ns per disabled SpanScope over `iters` calls, baseline-subtracted.
double disabled_hook_ns(std::int64_t iters) {
  using namespace trinity;
  volatile std::int64_t sink = 0;
  util::Timer base_timer;
  for (std::int64_t i = 0; i < iters; ++i) sink = sink + i;
  const double baseline = base_timer.seconds();

  util::Timer hook_timer;
  for (std::int64_t i = 0; i < iters; ++i) {
    trace::SpanScope span("bench.noop", trace::kCatSimpi);
    if (span) span.arg("i", static_cast<double>(i));
    sink = sink + i;
  }
  const double with_hook = hook_timer.seconds();
  return (with_hook - baseline) / static_cast<double>(iters) * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  auto cfg = bench::bench_config("bench_trace_overhead", "Trace overhead: disabled-tracing cost on the Figure 7 workload");
  cfg.flag_int("genes", 120, "genes to simulate (scales the dataset)");
  cfg.flag_int("ranks", 4, "rank count for the measured world(s)");
  cfg.flag_int("kernel-repeats", 20, "per-item kernel repeats (cost-model calibration)");
  cfg.flag_double("budget", 0.02, "maximum allowed disabled-tracing overhead fraction");
  cfg.flag_int("iters", 20'000'000, "hot-loop iterations for the disabled-hook microbench");
  int parse_exit = 0;
  if (!bench::parse_or_exit(cfg, argc, argv, &parse_exit)) return parse_exit;
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int nranks = static_cast<int>(cfg.get_int("ranks"));
  const int repeats = static_cast<int>(cfg.get_int("kernel-repeats"));
  const double budget = cfg.get_double("budget");

  bench::banner("Trace overhead", "disabled-tracing cost on the Figure 7 workload");

  if (trace::enabled()) {
    std::printf("error: a recorder is installed; this bench measures the disabled path\n");
    return 1;
  }
  const std::int64_t iters = cfg.get_int("iters");
  const double hook_ns = disabled_hook_ns(iters);
  std::printf("disabled hook: %.2f ns/call (%lld calls)\n", hook_ns,
              static_cast<long long>(iters));

  const auto w = bench::make_workload("sugarbeet_like", genes, "trace_overhead");
  bench::describe(w);

  chrysalis::GraphFromFastaOptions options;
  options.k = bench::kK;
  options.kernel_repeats = repeats;
  options.model_threads_per_rank = 1;

  // Untraced run: the workload cost the hooks are amortized against.
  util::Timer untraced_timer;
  simpi::run(nranks, [&](simpi::Context& ctx) {
    chrysalis::run_hybrid(ctx, w.contigs, w.counter, options);
  });
  const double untraced_wall = untraced_timer.seconds();

  // Traced run of the identical workload: every recorded event is one hook
  // that the disabled path would have short-circuited. Wait sub-spans ride
  // inside their op's hook, so events >= hooks and the bound is conservative.
  trace::SpanRecorder recorder(1u << 22);
  std::uint64_t hook_count = 0;
  {
    trace::ScopedRecording recording(&recorder);
    simpi::run(nranks, [&](simpi::Context& ctx) {
      chrysalis::run_hybrid(ctx, w.contigs, w.counter, options);
    });
    hook_count = recorder.drain().size() + recorder.dropped_events();
  }

  const double projected_s = hook_ns * 1e-9 * static_cast<double>(hook_count);
  const double overhead = untraced_wall > 0.0 ? projected_s / untraced_wall : 0.0;
  std::printf("\nworkload: %d ranks, untraced wall %.3f s\n", nranks, untraced_wall);
  std::printf("hook sites exercised: %llu (from the traced twin run)\n",
              static_cast<unsigned long long>(hook_count));
  std::printf("projected disabled-tracing overhead: %.4f%% (budget %.1f%%)\n",
              overhead * 100.0, budget * 100.0);

  bench::JsonSink json(cfg, "trace_overhead");
  json.begin_entry();
  json.field("hook_ns", hook_ns);
  json.field("hook_count", static_cast<std::int64_t>(hook_count));
  json.field("untraced_wall_s", untraced_wall);
  json.field("projected_overhead", overhead);
  json.field("budget", budget);

  if (overhead >= budget) {
    std::printf("FAIL: disabled-tracing overhead exceeds the budget\n");
    return 1;
  }
  std::printf("PASS: disabled-tracing overhead within budget\n");
  return 0;
}
