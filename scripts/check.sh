#!/bin/sh
# check.sh — the repo's verification gate.
#
#   1. Tier-1 verify (ROADMAP.md): full build + complete ctest suite.
#   2. ASan+UBSan build (-DTRINITY_SANITIZE=ON) running the checkpoint and
#      simpi test binaries — the subsystems that throw across thread and
#      collective boundaries, where sanitizers earn their keep.
#
# Usage: scripts/check.sh [--skip-sanitize]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [ "${1:-}" = "--skip-sanitize" ]; then
    echo "== sanitizer pass skipped =="
    exit 0
fi

echo "== ASan+UBSan: checkpoint + simpi tests =="
cmake -B build-asan -S . -DTRINITY_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$jobs" --target \
    checkpoint_test simpi_fault_test simpi_test simpi_extensions_test \
    pipeline_checkpoint_test
for t in checkpoint_test simpi_fault_test simpi_test simpi_extensions_test \
         pipeline_checkpoint_test; do
    echo "-- $t (ASan+UBSan)"
    ./build-asan/tests/"$t"
done

echo "== all checks passed =="
