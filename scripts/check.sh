#!/bin/sh
# check.sh — the repo's verification gate.
#
#   1. Docs gate: local markdown links in README.md, EXPERIMENTS.md and
#      docs/ must resolve,
#      and the "Schema version" stated in docs/OBSERVABILITY.md must match
#      kReportSchemaVersion in src/pipeline/run_report.hpp (the emitted
#      report's version is asserted against the same constant by
#      run_report_test in step 2).
#   2. Tier-1 verify (ROADMAP.md): full build + complete ctest suite.
#   3. Fault-matrix gate (docs/ROBUSTNESS.md): the injected-storage-failure
#      matrix — ENOSPC and a torn rename at the manifest commit recovering
#      via resume to byte-identical transcripts, EIO mid-dump and a short
#      write on the final transcripts retried in process — plus the io-layer
#      unit tests and the malformed-input corpus.
#   4. Trace gate (docs/OBSERVABILITY.md "Distributed trace"): a small
#      traced pipeline run must leave a trace.json that passes the Chrome
#      trace-event shape checker and yields a critical-path analysis, and
#      the disabled-tracing overhead bench must stay under its 2% budget.
#   5. ASan+UBSan build (-DTRINITY_SANITIZE=ON) running the checkpoint, io,
#      simpi and trace test binaries — the subsystems that throw across
#      thread and collective boundaries (and, for the trace recorder,
#      publish buffers across threads), where sanitizers earn their keep.
#
# Usage: scripts/check.sh [--skip-sanitize]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

jobs=$(nproc 2>/dev/null || echo 4)

echo "== docs: links + schema version =="
docs_failed=0
for doc in README.md EXPERIMENTS.md docs/*.md; do
    [ -f "$doc" ] || continue
    doc_dir=$(dirname -- "$doc")
    # Markdown links to local files: [text](target). URLs and anchors pass.
    for target in $(grep -o ']([^)#][^)]*)' "$doc" | sed 's/^](//; s/)$//'); do
        case $target in
            http://*|https://*|mailto:*) continue ;;
        esac
        # Relative to the doc's directory first, then the repo root.
        if [ ! -e "$doc_dir/$target" ] && [ ! -e "$target" ]; then
            echo "dead link in $doc: $target" >&2
            docs_failed=1
        fi
    done
done
header_version=$(sed -n 's/.*kReportSchemaVersion = \([0-9][0-9]*\);.*/\1/p' \
    src/pipeline/run_report.hpp)
docs_version=$(sed -n 's/^Schema version: \([0-9][0-9]*\)$/\1/p' docs/OBSERVABILITY.md)
if [ -z "$header_version" ] || [ -z "$docs_version" ]; then
    echo "could not extract schema version (header: '$header_version'," \
         "docs: '$docs_version')" >&2
    docs_failed=1
elif [ "$header_version" != "$docs_version" ]; then
    echo "schema version mismatch: run_report.hpp says $header_version," \
         "docs/OBSERVABILITY.md says $docs_version" >&2
    docs_failed=1
fi
[ "$docs_failed" -eq 0 ] || exit 1
echo "docs ok (schema version $header_version)"

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== fault matrix: injected storage failures + malformed input =="
# Already run as part of ctest above; run the binaries verbatim as a
# dedicated gate so a failure here names the robustness contract directly
# (and so the gate still bites if the suite registration ever regresses).
./build/tests/io_fault_test
./build/tests/seq_parse_policy_test
./build/tests/io_fault_matrix_test

echo "== trace: traced run + shape check + overhead budget =="
trace_dir=/tmp/trinity_check_trace
rm -rf "$trace_dir"
./build/examples/quickstart --genes 8 --ranks 2 --trace --work-dir "$trace_dir" >/dev/null
./build/examples/trinity_trace "$trace_dir/trace.json" --validate
./build/examples/trinity_trace "$trace_dir/trace.json" | grep -q 'critical path'
./build/examples/trinity_report "$trace_dir/run_report.json" --trace | grep -q 'top spans'
./build/bench/bench_trace_overhead --genes 60 --kernel-repeats 5 --iters 5000000

if [ "${1:-}" = "--skip-sanitize" ]; then
    echo "== sanitizer pass skipped =="
    exit 0
fi

echo "== ASan+UBSan: checkpoint + io + simpi + trace tests =="
cmake -B build-asan -S . -DTRINITY_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$jobs" --target \
    checkpoint_test simpi_fault_test simpi_test simpi_extensions_test \
    pipeline_checkpoint_test io_fault_test seq_parse_policy_test trace_test
for t in checkpoint_test simpi_fault_test simpi_test simpi_extensions_test \
         pipeline_checkpoint_test io_fault_test seq_parse_policy_test trace_test; do
    echo "-- $t (ASan+UBSan)"
    ./build-asan/tests/"$t"
done

echo "== all checks passed =="
