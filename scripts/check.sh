#!/bin/sh
# check.sh — the repo's verification gate.
#
#   1. Docs gate: local markdown links in README.md, EXPERIMENTS.md and
#      docs/ must resolve,
#      and the "Schema version" stated in docs/OBSERVABILITY.md must match
#      kReportSchemaVersion in src/pipeline/run_report.hpp (the emitted
#      report's version is asserted against the same constant by
#      run_report_test in step 2); likewise "Metrics schema version" must
#      match kMetricsSchemaVersion in src/obs/exposition.hpp.
#   2. Tier-1 verify (ROADMAP.md): full build + complete ctest suite.
#   3. Fault-matrix gate (docs/ROBUSTNESS.md): the injected-storage-failure
#      matrix — ENOSPC and a torn rename at the manifest commit recovering
#      via resume to byte-identical transcripts, EIO mid-dump and a short
#      write on the final transcripts retried in process — plus the io-layer
#      unit tests and the malformed-input corpus.
#   4. Trace gate (docs/OBSERVABILITY.md "Distributed trace"): a small
#      traced pipeline run must leave a trace.json that passes the Chrome
#      trace-event shape checker and yields a critical-path analysis, and
#      the disabled-tracing overhead bench must stay under its 2% budget.
#   5. Config gate (docs/CONFIG.md): the unified-parsing unit suite verbatim
#      (round-trip through to_json included), a real binary exercising
#      --config preload + a deprecated spelling (must warn on stderr), and
#      a malformed value failing with the typed "config error" shape.
#   6. K-mer index gate: bench_kmer_index must show the flat open-addressing
#      index no slower than std::unordered_map on the Figure 7 workload
#      shape (--min-speedup 1.0, identical entries/checksum enforced by the
#      bench itself) and record the run in BENCH_kmer_index.json.
#   7. Serve gate (docs/SERVING.md): a two-tenant batch where one tenant's
#      job carries an injected rank crash — both jobs must complete through
#      admission + scheduling with a clean drain, the clean tenant's
#      transcripts must be byte-identical to a fault-free control run, and
#      the post-hoc aggregate must rebuild the per-tenant ledger from the
#      run-report artifacts. The run exports live metrics: the final
#      metrics.prom must pass the strict Prometheus parser (trinity_top
#      --check-prom) and the metrics.json dashboard must agree on the
#      outcome totals; bench_obs_overhead then gates the metrics-on cost
#      of the serve batch workload under 2%.
#   8. Serve-recovery gate (docs/SERVING.md "Reliability"): a served job is
#      SIGKILLed mid-run, the server is restarted over the same root with
#      the same jobs file — the duplicate submission must be rejected, the
#      journaled job must be recovered and complete with transcripts
#      byte-identical to the control run, and the journal must hold exactly
#      one terminal record for it.
#   9. Transcript-index gate (docs/INDEXING.md): the on-disk format version
#      stated in the docs must match kTranscriptIndexFormatVersion in
#      src/chrysalis/transcript_index.hpp, INDEXING.md must be linked from
#      README.md and docs/SERVING.md, and bench_r2t_index must show the
#      warm mmap load no slower than the per-run voting-map setup
#      (--min-speedup 1.0, assignment parity enforced by the bench itself),
#      recording the run in BENCH_r2t_index.json.
#  10. GFF sharding gate (docs/CONFIG.md --gff-sharding): bench_gff_shard
#      must show owner-computes producing byte-identical components to the
#      pooled path at 1/2/4/8 ranks while cutting total communication
#      payload by at least --min-bytes-reduction at >= 4 ranks, recording
#      the run in BENCH_gff_shard.json.
#  11. ASan+UBSan build (-DTRINITY_SANITIZE=ON) running the checkpoint, io,
#      simpi, trace, config, flat-index and serve test binaries — the
#      subsystems that throw across thread and collective boundaries (and,
#      for the trace recorder, publish buffers across threads; for the flat
#      index, raw-storage placement news; for the transcript index, mmap'd
#      read-only images shared across jobs; for the serve layer, preempt
#      and deadline tokens, the journal, and rank leases across
#      scheduler/watchdog/worker threads; for the metrics layer, relaxed-
#      atomic instruments hammered by every serve thread while the
#      exporter thread snapshots them), where sanitizers earn their keep.
#
# Usage: scripts/check.sh [--skip-sanitize]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

jobs=$(nproc 2>/dev/null || echo 4)

echo "== docs: links + schema version =="
docs_failed=0
for doc in README.md EXPERIMENTS.md docs/*.md; do
    [ -f "$doc" ] || continue
    doc_dir=$(dirname -- "$doc")
    # Markdown links to local files: [text](target). URLs and anchors pass.
    for target in $(grep -o ']([^)#][^)]*)' "$doc" | sed 's/^](//; s/)$//'); do
        case $target in
            http://*|https://*|mailto:*) continue ;;
        esac
        # Relative to the doc's directory first, then the repo root.
        if [ ! -e "$doc_dir/$target" ] && [ ! -e "$target" ]; then
            echo "dead link in $doc: $target" >&2
            docs_failed=1
        fi
    done
done
header_version=$(sed -n 's/.*kReportSchemaVersion = \([0-9][0-9]*\);.*/\1/p' \
    src/pipeline/run_report.hpp)
docs_version=$(sed -n 's/^Schema version: \([0-9][0-9]*\)$/\1/p' docs/OBSERVABILITY.md)
if [ -z "$header_version" ] || [ -z "$docs_version" ]; then
    echo "could not extract schema version (header: '$header_version'," \
         "docs: '$docs_version')" >&2
    docs_failed=1
elif [ "$header_version" != "$docs_version" ]; then
    echo "schema version mismatch: run_report.hpp says $header_version," \
         "docs/OBSERVABILITY.md says $docs_version" >&2
    docs_failed=1
fi
metrics_header_version=$(sed -n 's/.*kMetricsSchemaVersion = \([0-9][0-9]*\);.*/\1/p' \
    src/obs/exposition.hpp)
metrics_docs_version=$(sed -n 's/^Metrics schema version: \([0-9][0-9]*\)$/\1/p' \
    docs/OBSERVABILITY.md)
if [ -z "$metrics_header_version" ] || [ -z "$metrics_docs_version" ]; then
    echo "could not extract metrics schema version (header: '$metrics_header_version'," \
         "docs: '$metrics_docs_version')" >&2
    docs_failed=1
elif [ "$metrics_header_version" != "$metrics_docs_version" ]; then
    echo "metrics schema version mismatch: exposition.hpp says $metrics_header_version," \
         "docs/OBSERVABILITY.md says $metrics_docs_version" >&2
    docs_failed=1
fi
index_header_version=$(sed -n 's/.*kTranscriptIndexFormatVersion = \([0-9][0-9]*\);.*/\1/p' \
    src/chrysalis/transcript_index.hpp)
index_docs_version=$(sed -n 's/^Format version: \([0-9][0-9]*\)$/\1/p' docs/INDEXING.md)
if [ -z "$index_header_version" ] || [ -z "$index_docs_version" ]; then
    echo "could not extract index format version (header: '$index_header_version'," \
         "docs: '$index_docs_version')" >&2
    docs_failed=1
elif [ "$index_header_version" != "$index_docs_version" ]; then
    echo "index format version mismatch: transcript_index.hpp says" \
         "$index_header_version, docs/INDEXING.md says $index_docs_version" >&2
    docs_failed=1
fi
for doc in README.md docs/SERVING.md; do
    if ! grep -q 'INDEXING.md' "$doc"; then
        echo "$doc does not link docs/INDEXING.md" >&2
        docs_failed=1
    fi
done
[ "$docs_failed" -eq 0 ] || exit 1
echo "docs ok (schema version $header_version, metrics schema $metrics_header_version," \
     "index format version $index_header_version)"

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== fault matrix: injected storage failures + malformed input =="
# Already run as part of ctest above; run the binaries verbatim as a
# dedicated gate so a failure here names the robustness contract directly
# (and so the gate still bites if the suite registration ever regresses).
./build/tests/io_fault_test
./build/tests/seq_parse_policy_test
./build/tests/io_fault_matrix_test

echo "== trace: traced run + shape check + overhead budget =="
trace_dir=/tmp/trinity_check_trace
rm -rf "$trace_dir"
./build/examples/quickstart --genes 8 --ranks 2 --trace --work-dir "$trace_dir" >/dev/null
./build/examples/trinity_trace "$trace_dir/trace.json" --validate
./build/examples/trinity_trace "$trace_dir/trace.json" | grep -q 'critical path'
./build/examples/trinity_report "$trace_dir/run_report.json" --trace | grep -q 'top spans'
./build/bench/bench_trace_overhead --genes 60 --kernel-repeats 5 --iters 5000000

echo "== config: unified flag parsing (docs/CONFIG.md) =="
# The unit suite verbatim (includes the to_json round-trip), then a real
# binary: --config preload with a deprecated spelling overriding it.
./build/tests/config_test
cfg_dir=/tmp/trinity_check_config
rm -rf "$cfg_dir"
mkdir -p "$cfg_dir"
printf '{"genes": 6, "ranks": 4, "trace_sample_interval_ms": 0}\n' \
    > "$cfg_dir/cfg.json"
./build/examples/quickstart --config "$cfg_dir/cfg.json" --nprocs 2 \
    --work-dir "$cfg_dir/run" >/dev/null 2>"$cfg_dir/stderr"
grep -q -- '--nprocs is deprecated; use --ranks' "$cfg_dir/stderr"
# Malformed values must fail with the typed error shape, not a crash.
if ./build/examples/quickstart --ranks banana >/dev/null 2>"$cfg_dir/err"; then
    echo "expected 'quickstart --ranks banana' to fail" >&2
    exit 1
fi
grep -q "config error: --ranks: expected an integer, got 'banana'" "$cfg_dir/err"
echo "config ok"

echo "== k-mer index: flat index vs unordered_map (BENCH_kmer_index.json) =="
./build/bench/bench_kmer_index --genes 200 --repeats 3 --min-speedup 1.0 \
    --json "$repo_root/BENCH_kmer_index.json"

echo "== serve: multi-tenant isolation under an injected fault =="
serve_dir=/tmp/trinity_check_serve
rm -rf "$serve_dir"
mkdir -p "$serve_dir"
# Seed a small dataset: the pipeline's write_input stage leaves reads.fa
# in the work dir, which the served jobs then share as their input.
./build/examples/quickstart --genes 8 --ranks 2 --work-dir "$serve_dir/seed" >/dev/null
reads=$serve_dir/seed/reads.fa
# Control: tenant B alone, fault-free.
printf '{"tenant": "tenant-b", "job-id": "clean", "reads": "%s", "ranks": 2, "k": 15, "omp-threads": 1}\n' \
    "$reads" > "$serve_dir/control.jsonl"
./build/examples/trinity_serve --jobs "$serve_dir/control.jsonl" \
    --root "$serve_dir/control" --total-ranks 4 \
    | grep -q 'drain complete: 1 completed, 0 failed'
# Scenario: tenant A's job kills rank 1 mid-Chrysalis (retried inside its
# own work dir by the pipeline's retry driver); tenant B runs concurrently.
{
    printf '{"tenant": "tenant-a", "job-id": "crashy", "reads": "%s", "ranks": 2, "k": 15, "omp-threads": 1, "fault-rank": 1, "fault-stage": "chrysalis.graph_from_fasta", "max-attempts": 3}\n' "$reads"
    printf '{"tenant": "tenant-b", "job-id": "clean", "reads": "%s", "ranks": 2, "k": 15, "omp-threads": 1}\n' "$reads"
} > "$serve_dir/jobs.jsonl"
./build/examples/trinity_serve --jobs "$serve_dir/jobs.jsonl" \
    --root "$serve_dir/faulted" --total-ranks 4 --metrics-period-s 0.25 \
    | grep -q 'drain complete: 2 completed, 0 failed'
# Isolation: tenant B's transcripts are byte-identical to the control run.
cmp "$serve_dir/control/tenant-b/clean/Trinity.fa" \
    "$serve_dir/faulted/tenant-b/clean/Trinity.fa"
# The ledger is reconstructible from the run-report artifacts alone.
./build/examples/trinity_report --aggregate "$serve_dir/faulted" | grep -q 'tenant-a'
# Live telemetry: the exporter's final flush left well-formed exposition
# files — the .prom must pass the strict Prometheus parser and the JSON
# dashboard must show both jobs completed.
./build/examples/trinity_top --check-prom "$serve_dir/faulted/metrics.prom" \
    | grep -q 'valid Prometheus exposition'
./build/examples/trinity_top --root "$serve_dir/faulted" --iterations 1 --no-clear \
    | grep -q 'outcomes: 2 ok'
echo "serve ok"

echo "== metrics overhead: serve A/B with exporter on (budget 2%) =="
./build/bench/bench_obs_overhead --jobs 8 --repeats 2 --genes 8 \
    --iters 5000000 --budget 0.02

echo "== serve recovery: SIGKILL mid-job, restart, byte-identical resume =="
rec_root=$serve_dir/recovery
# The same clean job, wedged for 3 s inside inchworm so the kill reliably
# lands mid-run with committed checkpoints behind it (hang injection is
# scheduling-only: it does not change the outputs or the fingerprint).
printf '{"tenant": "tenant-b", "job-id": "clean", "reads": "%s", "ranks": 2, "k": 15, "omp-threads": 1, "hang-stage": "inchworm", "hang-seconds": 3}\n' \
    "$reads" > "$serve_dir/recovery.jsonl"
./build/examples/trinity_serve --jobs "$serve_dir/recovery.jsonl" \
    --root "$rec_root" --total-ranks 4 > "$serve_dir/recovery_first.log" 2>&1 &
serve_pid=$!
sleep 1  # mid-hang: the journal holds submit+dispatch, the manifest the early stages
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
# Restart over the same root with the same jobs file: the duplicate
# submission must be rejected, the journaled job recovered and finished.
./build/examples/trinity_serve --jobs "$serve_dir/recovery.jsonl" \
    --root "$rec_root" --total-ranks 4 > "$serve_dir/recovery_second.log"
grep -q 'reject \[invalid_spec\].*duplicate job id' "$serve_dir/recovery_second.log"
grep -q 'drain complete: 1 completed, 0 failed' "$serve_dir/recovery_second.log"
grep -q '1 recovered' "$serve_dir/recovery_second.log"
# Byte-identical to the never-killed control run.
cmp "$serve_dir/control/tenant-b/clean/Trinity.fa" \
    "$rec_root/tenant-b/clean/Trinity.fa"
# Exactly one terminal journal record: recovery re-dispatched the job, it
# did not double-complete it.
[ "$(grep -c '"complete"' "$rec_root/journal.jsonl")" -eq 1 ]
echo "serve recovery ok"

echo "== transcript index: warm mmap load vs voting-map setup (BENCH_r2t_index.json) =="
./build/bench/bench_r2t_index --genes 200 --repeats 3 --min-speedup 1.0 \
    --json "$repo_root/BENCH_r2t_index.json"

echo "== gff sharding: owner-computes vs pooled (BENCH_gff_shard.json) =="
./build/bench/bench_gff_shard --genes 120 --kernel-repeats 10 --trials 1 \
    --min-bytes-reduction 1.5 --json "$repo_root/BENCH_gff_shard.json"

if [ "${1:-}" = "--skip-sanitize" ]; then
    echo "== sanitizer pass skipped =="
    exit 0
fi

echo "== ASan+UBSan: checkpoint + io + simpi + trace + config + index + serve + obs tests =="
cmake -B build-asan -S . -DTRINITY_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$jobs" --target \
    checkpoint_test simpi_fault_test simpi_test simpi_extensions_test dsu_test \
    pipeline_checkpoint_test io_fault_test seq_parse_policy_test trace_test \
    config_test flat_index_test transcript_index_test serve_test serve_fault_test \
    serve_recovery_test serve_watchdog_test obs_test serve_metrics_test
for t in checkpoint_test simpi_fault_test simpi_test simpi_extensions_test dsu_test \
         pipeline_checkpoint_test io_fault_test seq_parse_policy_test trace_test \
         config_test flat_index_test transcript_index_test serve_test serve_fault_test \
         serve_recovery_test serve_watchdog_test obs_test serve_metrics_test; do
    echo "-- $t (ASan+UBSan)"
    ./build-asan/tests/"$t"
done

echo "== all checks passed =="
