// trinity_top: live one-screen status for a running trinity_serve instance.
//
// Tails `<root>/metrics.json` (the versioned snapshot obs::MetricsExporter
// publishes atomically every cycle) and renders the server at a glance:
// queue depth and age, in-flight jobs with their current pipeline stage
// (derived from the trinity_job_stage_heartbeat gauges), admission and
// terminal-outcome totals, retry/preemption/kill rates, and latency
// quantiles for job wall time and journal fsync. No connection to the
// server is needed — the snapshot file is the whole protocol, so it works
// across restarts and on post-mortem roots.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/trinity_serve --jobs jobs.jsonl --root /tmp/serve &
//   ./build/examples/trinity_top --root /tmp/serve
//
// `--check-prom FILE` instead runs the strict Prometheus text parser over
// FILE and exits 0/1; scripts/check.sh uses it to validate metrics.prom.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "pipeline/config.hpp"

namespace {

using trinity::obs::FamilySnapshot;
using trinity::obs::HistogramSnapshot;
using trinity::obs::Labels;
using trinity::obs::MetricsSnapshot;
using trinity::obs::SeriesSnapshot;

std::string label_value(const Labels& labels, const std::string& key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return "";
}

/// Sum of a counter family across all series whose labels match `want`
/// (every (key, value) in `want` must be present; extra labels are free).
double sum_where(const MetricsSnapshot& snap, const std::string& family,
                 const Labels& want = {}) {
  const FamilySnapshot* f = snap.find_family(family);
  if (f == nullptr) return 0.0;
  double total = 0.0;
  for (const auto& s : f->series) {
    bool match = true;
    for (const auto& [k, v] : want) {
      if (label_value(s.labels, k) != v) { match = false; break; }
    }
    if (match) total += s.value;
  }
  return total;
}

/// Fold every series of a histogram family into one distribution.
HistogramSnapshot merged_histogram(const MetricsSnapshot& snap,
                                   const std::string& family) {
  HistogramSnapshot merged;
  const FamilySnapshot* f = snap.find_family(family);
  if (f == nullptr) return merged;
  for (const auto& s : f->series) {
    if (merged.bounds.empty()) {
      merged = s.hist;
      continue;
    }
    if (s.hist.bounds != merged.bounds) continue;  // defensive; never expected
    for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
      merged.buckets[i] += s.hist.buckets[i];
    }
    merged.sum += s.hist.sum;
  }
  return merged;
}

std::string fmt_seconds(double s) {
  char buf[32];
  if (s < 0) s = 0;
  if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fm", s / 60.0);
  }
  return buf;
}

std::string fmt_bytes(double b) {
  char buf[32];
  if (b < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0fKiB", b / 1024.0);
  } else if (b < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", b / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

struct ActiveJob {
  std::string tenant;
  std::string job;
  std::string stage;    // most recent heartbeat stage, "" if none yet
  double age_s = -1.0;  // snapshot uptime minus last heartbeat
};

std::vector<ActiveJob> active_jobs(const MetricsSnapshot& snap) {
  std::vector<ActiveJob> jobs;
  const FamilySnapshot* active = snap.find_family("trinity_job_active");
  if (active == nullptr) return jobs;
  for (const auto& s : active->series) {
    if (s.value < 0.5) continue;
    ActiveJob j;
    j.tenant = label_value(s.labels, "tenant");
    j.job = label_value(s.labels, "job");
    jobs.push_back(std::move(j));
  }
  // Current stage: the heartbeat gauge holds registry uptime at stage entry,
  // so the series with the largest value is the stage the job is in now.
  const FamilySnapshot* hb = snap.find_family("trinity_job_stage_heartbeat");
  if (hb != nullptr) {
    for (auto& j : jobs) {
      double best = -1.0;
      for (const auto& s : hb->series) {
        if (label_value(s.labels, "job") != j.job ||
            label_value(s.labels, "tenant") != j.tenant) {
          continue;
        }
        if (s.value > best) {
          best = s.value;
          j.stage = label_value(s.labels, "stage");
        }
      }
      if (best >= 0.0) j.age_s = std::max(0.0, snap.uptime_s - best);
    }
  }
  std::sort(jobs.begin(), jobs.end(), [](const ActiveJob& a, const ActiveJob& b) {
    return std::tie(a.tenant, a.job) < std::tie(b.tenant, b.job);
  });
  return jobs;
}

void render(const MetricsSnapshot& snap, const std::string& json_path) {
  std::printf("trinity_top — %s  (snapshot #%llu, server uptime %s)\n",
              json_path.c_str(), static_cast<unsigned long long>(snap.sequence),
              fmt_seconds(snap.uptime_s).c_str());

  const double depth = snap.value_or("trinity_serve_queue_depth", {});
  const double peak = snap.value_or("trinity_serve_queue_depth_peak", {});
  const double oldest = snap.value_or("trinity_serve_oldest_queued_age_seconds", {});
  const double inflight = snap.value_or("trinity_serve_jobs_inflight", {});
  const double ranks_avail = snap.value_or("trinity_serve_ranks_available", {});
  const double ranks_total = snap.value_or("trinity_serve_ranks_total", {});
  std::printf(
      "queue %.0f (peak %.0f, oldest %s)   in-flight %.0f   ranks %.0f/%.0f free\n",
      depth, peak, fmt_seconds(oldest).c_str(), inflight, ranks_avail,
      ranks_total);

  const double accepted =
      sum_where(snap, "trinity_serve_admission_total", {{"outcome", "accepted"}});
  const double admitted_all = sum_where(snap, "trinity_serve_admission_total");
  const double completed =
      sum_where(snap, "trinity_serve_jobs_total", {{"outcome", "completed"}});
  const double failed =
      sum_where(snap, "trinity_serve_jobs_total", {{"outcome", "failed"}});
  const double quarantined =
      sum_where(snap, "trinity_serve_jobs_total", {{"outcome", "quarantined"}});
  const double deadline =
      sum_where(snap, "trinity_serve_jobs_total", {{"outcome", "deadline_exceeded"}});
  const double hung =
      sum_where(snap, "trinity_serve_jobs_total", {{"outcome", "hung"}});
  std::printf(
      "admission: %.0f accepted / %.0f rejected    outcomes: %.0f ok, %.0f "
      "failed, %.0f quarantined, %.0f deadline, %.0f hung\n",
      accepted, admitted_all - accepted, completed, failed, quarantined,
      deadline, hung);
  std::printf(
      "churn: %.0f retries, %.0f preemptions, %.0f recovered    journal "
      "appends: %.0f\n",
      sum_where(snap, "trinity_serve_job_retries_total"),
      sum_where(snap, "trinity_serve_preemptions_total"),
      sum_where(snap, "trinity_serve_recovered_jobs_total"),
      sum_where(snap, "trinity_serve_journal_events_total"));

  const HistogramSnapshot lat =
      merged_histogram(snap, "trinity_serve_job_latency_seconds");
  const HistogramSnapshot wait =
      merged_histogram(snap, "trinity_serve_queue_wait_seconds");
  const HistogramSnapshot fsync =
      merged_histogram(snap, "trinity_serve_journal_append_seconds");
  if (lat.count() > 0) {
    std::printf("job latency: p50 %s  p95 %s  p99 %s  (%llu done)\n",
                fmt_seconds(lat.quantile(0.50)).c_str(),
                fmt_seconds(lat.quantile(0.95)).c_str(),
                fmt_seconds(lat.quantile(0.99)).c_str(),
                static_cast<unsigned long long>(lat.count()));
  }
  if (wait.count() > 0 || fsync.count() > 0) {
    std::printf("queue wait p50 %s p95 %s    journal fsync p50 %s p99 %s\n",
                fmt_seconds(wait.quantile(0.50)).c_str(),
                fmt_seconds(wait.quantile(0.95)).c_str(),
                fmt_seconds(fsync.quantile(0.50)).c_str(),
                fmt_seconds(fsync.quantile(0.99)).c_str());
  }

  // Per-tenant table: union of every tenant that appears on a tenant-labeled
  // family, live gauges joined with lifetime totals.
  std::set<std::string> tenants;
  for (const char* family :
       {"trinity_serve_tenant_queued_jobs", "trinity_serve_jobs_total",
        "trinity_serve_jobs_rejected_total"}) {
    const FamilySnapshot* f = snap.find_family(family);
    if (f == nullptr) continue;
    for (const auto& s : f->series) {
      const std::string t = label_value(s.labels, "tenant");
      if (!t.empty()) tenants.insert(t);
    }
  }
  if (!tenants.empty()) {
    std::printf("\n%-12s %6s %6s %10s %8s %8s %8s\n", "tenant", "queued",
                "ranks", "rss-ewma", "ok", "failed", "rejected");
    for (const std::string& t : tenants) {
      const Labels tl = {{"tenant", t}};
      std::printf("%-12s %6.0f %6.0f %10s %8.0f %8.0f %8.0f\n", t.c_str(),
                  snap.value_or("trinity_serve_tenant_queued_jobs", tl),
                  snap.value_or("trinity_serve_tenant_running_ranks", tl),
                  fmt_bytes(snap.value_or("trinity_serve_tenant_rss_ewma_bytes", tl))
                      .c_str(),
                  sum_where(snap, "trinity_serve_jobs_total",
                            {{"tenant", t}, {"outcome", "completed"}}),
                  sum_where(snap, "trinity_serve_jobs_total",
                            {{"tenant", t}, {"outcome", "failed"}}),
                  sum_where(snap, "trinity_serve_jobs_rejected_total", tl));
    }
  }

  const std::vector<ActiveJob> jobs = active_jobs(snap);
  if (!jobs.empty()) {
    std::printf("\nactive jobs:\n");
    for (const auto& j : jobs) {
      std::printf("  %-12s %-16s %-28s %s\n", j.tenant.c_str(), j.job.c_str(),
                  j.stage.empty() ? "(dispatching)" : j.stage.c_str(),
                  j.age_s < 0 ? "" : ("in stage " + fmt_seconds(j.age_s)).c_str());
    }
  }
  std::fflush(stdout);
}

int check_prom(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "trinity_top: cannot open " << path << '\n';
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const MetricsSnapshot snap =
        trinity::obs::parse_prometheus_text(text.str());
    std::size_t series = 0;
    for (const auto& f : snap.families) series += f.series.size();
    std::cout << path << ": valid Prometheus exposition, " << snap.families.size()
              << " families, " << series << " series\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "trinity_top: " << path << ": " << e.what() << '\n';
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("trinity_top",
             "live one-screen serve status from <root>/metrics.json");
  cfg.usage("--root DIR [--iterations N] | --check-prom FILE")
      .flag_string("root", "", "serve root holding metrics.json (required)")
      .flag_int("iterations", 0, "render this many frames then exit (0 = forever)")
      .flag_double("period-s", 1.0, "refresh interval between frames")
      .flag_bool("clear", true,
                 "clear the screen between frames (--no-clear for logs/pipes)")
      .flag_string("check-prom", "",
                   "validate a metrics.prom file with the strict exposition "
                   "parser and exit 0/1 (no rendering)");
  try {
    cfg.parse_cli(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested()) {
    std::cout << cfg.help_text();
    return 0;
  }
  const std::string prom_path = cfg.get_string("check-prom");
  if (!prom_path.empty()) return check_prom(prom_path);

  const std::string root = cfg.get_string("root");
  if (root.empty()) {
    std::cerr << "trinity_top: --root DIR is required (see --help)\n";
    return 2;
  }
  const std::string json_path = root + "/metrics.json";
  const long long iterations = cfg.get_int("iterations");
  const double period_s = cfg.get_double("period-s");
  const bool clear = cfg.get_bool("clear");

  bool rendered_any = false;
  for (long long frame = 0; iterations == 0 || frame < iterations; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(0.05, period_s)));
    }
    std::ifstream in(json_path);
    if (!in) {
      std::printf("trinity_top: waiting for %s ...\n", json_path.c_str());
      std::fflush(stdout);
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    MetricsSnapshot snap;
    try {
      snap = obs::snapshot_from_json(util::Json::parse(text.str()));
    } catch (const std::exception& e) {
      // The exporter publishes atomically, so a parse failure means a real
      // schema problem, not a torn write. Surface it and keep tailing.
      std::printf("trinity_top: %s: %s\n", json_path.c_str(), e.what());
      std::fflush(stdout);
      continue;
    }
    if (clear && rendered_any) std::printf("\033[H\033[2J");
    render(snap, json_path);
    rendered_any = true;
  }
  return rendered_any ? 0 : 1;
}
