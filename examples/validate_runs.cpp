// validate_runs: reproduces the paper's Section-IV methodology on a small
// dataset — repeated runs of the original (OpenMP-only) and hybrid
// pipelines, all-to-all Smith–Waterman categorization between them, and a
// two-sample t-test on the per-run metric.
//
// Usage:
//   validate_runs [--runs 4] [--genes 30] [--ranks 4]

#include <cstdio>
#include <iostream>

#include <fstream>

#include "pipeline/config.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "sim/transcriptome.hpp"
#include "validate/report.hpp"
#include "validate/validate.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("validate_runs",
             "repeated original-vs-hybrid runs with Smith-Waterman categorization "
             "and a two-sample t-test");
  cfg.flag_int("runs", 4, "runs of each pipeline version")
      .flag_int("genes", 30, "genes to simulate")
      .flag_int("ranks", 4, "ranks for the hybrid runs")
      .flag_string("report", "/tmp/trinity_validation.md", "markdown report path");
  cfg.alias("nprocs", "ranks");
  try {
    cfg.parse_cli(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested()) {
    std::cout << cfg.help_text();
    return 0;
  }
  const int runs = static_cast<int>(cfg.get_int("runs"));
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const int ranks = static_cast<int>(cfg.get_int("ranks"));

  auto preset = sim::preset("whitefly_like");
  preset.transcriptome.num_genes = genes;
  const auto data = sim::simulate_dataset(preset);
  std::cout << "dataset: " << data.reads.reads.size() << " reads from "
            << data.transcriptome.transcripts.size() << " reference isoforms\n\n";

  auto run_once = [&](int nranks, std::uint64_t seed) {
    pipeline::PipelineOptions o;
    o.nranks = nranks;
    o.run_seed = seed;
    o.work_dir = "/tmp/trinity_validate_runs";
    return pipeline::run_pipeline(data.reads.reads, o);
  };

  // Repeated runs of each version; the run seed models Trinity's
  // nondeterministic tie-breaking between repeated runs.
  std::vector<std::vector<seq::Sequence>> original;
  std::vector<std::vector<seq::Sequence>> parallel;
  std::vector<double> original_metric;
  std::vector<double> parallel_metric;
  for (int r = 0; r < runs; ++r) {
    original.push_back(run_once(1, static_cast<std::uint64_t>(r) + 1).transcripts);
    parallel.push_back(run_once(ranks, static_cast<std::uint64_t>(r) + 101).transcripts);
    original_metric.push_back(static_cast<double>(original.back().size()));
    parallel_metric.push_back(static_cast<double>(parallel.back().size()));
    std::cout << "run " << (r + 1) << ": original " << original.back().size()
              << " transcripts, parallel " << parallel.back().size() << "\n";
  }

  // "Parallel" bar: parallel run vs original run. "Original" bar: two
  // original runs (the expected level of variation).
  const auto parallel_vs_original = validate::all_to_all_categories(parallel[0], original[0]);
  const auto original_vs_original =
      validate::all_to_all_categories(original[runs > 1 ? 1 : 0], original[0]);

  auto print_counts = [](const char* label, const validate::CategoryCounts& c) {
    std::printf("%-22s (a) full 100%%: %4zu  (b) full <100%%: %4zu  (c) partial: %4zu  "
                "unmatched: %4zu\n",
                label, c.full_identical, c.full_diverged, c.partial, c.unmatched);
  };
  std::cout << "\nall-to-all Smith-Waterman categories (paper Figure 4):\n";
  print_counts("parallel vs original", parallel_vs_original);
  print_counts("original vs original", original_vs_original);

  const auto t = validate::compare_run_metric(original_metric, parallel_metric);
  std::printf("\ntwo-sample t-test on transcript counts: t = %.3f, p = %.3f -> %s\n", t.t,
              t.p_two_sided,
              t.significant_at_5pct ? "SIGNIFICANT DIFFERENCE (unexpected!)"
                                    : "no significant difference (matches the paper)");

  // Full report, markdown + CSV, for the record.
  const std::string report_path = cfg.get_string("report");
  std::ofstream report(report_path);
  validate::write_markdown_report(
      report,
      std::to_string(data.reads.reads.size()) + " reads from " +
          std::to_string(data.transcriptome.transcripts.size()) + " reference isoforms",
      {{"parallel vs original", parallel_vs_original},
       {"original vs original", original_vs_original}},
      {}, t);
  std::cout << "report written to " << report_path << '\n';
  return 0;
}
