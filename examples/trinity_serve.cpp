// trinity_serve: the multi-tenant assembly-as-a-service frontend.
//
// Reads job specs (one trinity::Config JSON object per line — the same
// schema docs/CONFIG.md defines for --config, plus the serve keys
// documented in docs/SERVING.md), submits them through admission control,
// lets the scheduler multiplex them over a shared simpi rank pool with
// priority preemption, drains, and prints the per-job table plus the
// per-tenant accounting ledger.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/quickstart --genes 8 >/dev/null     # makes reads.fa
//   cat > /tmp/jobs.jsonl <<'EOF'
//   {"tenant": "alice", "reads": "/tmp/trinity_quickstart/reads.fa", "ranks": 2, "k": 15}
//   {"tenant": "bob", "reads": "/tmp/trinity_quickstart/reads.fa", "ranks": 2, "k": 15, "priority": 5}
//   EOF
//   ./build/examples/trinity_serve --jobs /tmp/jobs.jsonl --root /tmp/serve_demo
//
// A rejected submission (quota, bounded queue, malformed spec) prints its
// typed reason and does not stop the batch; scripts/check.sh greps the
// final "drain complete" line and the accounting table.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "pipeline/config.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("trinity_serve",
             "multi-tenant assembly job server: admission control, quotas, "
             "priority preemption over a shared rank pool");
  cfg.usage("--jobs FILE.jsonl")
      .flag_string("jobs", "", "job specs, one Config JSON object per line (required)")
      .flag_int("total-ranks", 8, "size of the shared simulated rank pool")
      .flag_int("max-queue", 64, "server-wide bounded queue depth")
      .flag_int("max-queued-per-tenant", 8, "per-tenant queued-job quota")
      .flag_int("max-ranks-per-tenant", 8, "per-tenant concurrent-rank quota")
      .flag_int("rss-budget-mb", 0, "per-tenant running RSS budget in MiB (0 = unlimited)")
      .flag_string("root", "", "server root; jobs run in <root>/<tenant>/<job-id>")
      .flag_bool("preemption", true,
                 "priority preemption (--no-preemption = run-to-completion)")
      .flag_bool("journal", true,
                 "durable job journal + crash recovery (--no-journal disables)")
      .flag_double("hang-timeout-s", 0.0,
                   "watchdog: cancel a job making no checkpoint progress for "
                   "this long (0 = off)")
      .flag_int("job-attempts", 3,
                "default job-level attempt budget before quarantine "
                "(per-job \"job-attempts\" overrides)")
      .flag_string("accounting", "", "also write the accounting ledger JSON here")
      .flag_bool("metrics", true,
                 "live metrics registry + instrumentation (--no-metrics "
                 "removes every hook)")
      .flag_double("metrics-period-s", 1.0,
                   "exporter cadence for <root>/metrics.prom and "
                   "<root>/metrics.json (0 = no exporter thread)");
  try {
    cfg.parse_cli(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested()) {
    std::cout << cfg.help_text();
    return 0;
  }
  const std::string jobs_path = cfg.get_string("jobs");
  if (jobs_path.empty()) {
    std::cerr << "trinity_serve: --jobs FILE.jsonl is required (see --help)\n";
    return 2;
  }
  std::ifstream jobs_file(jobs_path);
  if (!jobs_file) {
    std::cerr << "trinity_serve: cannot open " << jobs_path << '\n';
    return 2;
  }

  serve::ServerOptions options;
  options.total_ranks = static_cast<int>(cfg.get_int("total-ranks"));
  options.max_queue_depth = static_cast<int>(cfg.get_int("max-queue"));
  options.default_quota.max_queued_jobs = static_cast<int>(cfg.get_int("max-queued-per-tenant"));
  options.default_quota.max_concurrent_ranks =
      static_cast<int>(cfg.get_int("max-ranks-per-tenant"));
  options.default_quota.rss_budget_bytes =
      static_cast<std::uint64_t>(cfg.get_int("rss-budget-mb")) * 1024 * 1024;
  options.root_dir = cfg.get_string("root");
  options.preemption = cfg.get_bool("preemption");
  options.journal = cfg.get_bool("journal");
  options.hang_timeout_s = cfg.get_double("hang-timeout-s");
  options.job_retry.max_attempts = static_cast<int>(cfg.get_int("job-attempts"));
  options.metrics = cfg.get_bool("metrics");
  options.metrics_export_period_s = cfg.get_double("metrics-period-s");
  options.job_defaults.trace_sample_interval_ms = 0;  // many small jobs; no RSS sampler

  serve::JobServer server(options);
  std::cout << "serving over " << server.total_ranks() << " rank(s), root "
            << server.root_dir() << '\n';
  if (server.exporter() != nullptr) {
    std::cout << "metrics: " << server.exporter()->prom_path() << " and "
              << server.exporter()->json_path() << " every "
              << options.metrics_export_period_s << "s (watch with trinity_top)\n";
  }

  int submitted = 0, rejected = 0, line_no = 0;
  std::string line;
  while (std::getline(jobs_file, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const serve::AdmitResult result =
        server.submit_text(line, jobs_path + ":" + std::to_string(line_no));
    if (result.accepted()) {
      ++submitted;
    } else {
      ++rejected;
      std::cout << "reject [" << serve::to_string(result.code) << "] " << jobs_path << ':'
                << line_no << ": " << result.detail << '\n';
    }
  }
  std::cout << "submitted " << submitted << " job(s), rejected " << rejected << '\n';

  server.drain();
  server.shutdown();

  std::cout << "\njobs:\n";
  int completed = 0, failed = 0, preemptions = 0;
  int quarantined = 0, killed = 0, recovered = 0;
  for (const auto& job : server.jobs()) {
    std::printf("%-12s %-10s prio %3d  %-11s  %d dispatch(es), %d attempt(s), %d preemption(s)%s  wait %.2fs run %.2fs\n",
                job.job_id.c_str(), job.tenant.c_str(), job.priority,
                serve::to_string(job.state), job.dispatches, job.attempts,
                job.preemptions, job.recovered ? " [recovered]" : "",
                job.queue_wait_seconds, job.run_seconds);
    if (!job.error.empty()) std::cout << "    error: " << job.error << '\n';
    if (job.state == serve::JobState::kCompleted) ++completed;
    if (job.state == serve::JobState::kFailed) ++failed;
    if (job.state == serve::JobState::kQuarantined) ++quarantined;
    if (job.state == serve::JobState::kKilled) ++killed;
    if (job.recovered) ++recovered;
    preemptions += job.preemptions;
  }

  const serve::Accounting accounting = server.accounting();
  std::cout << "\nper-tenant accounting:\n";
  accounting.summarize(std::cout);
  const std::string accounting_path = cfg.get_string("accounting");
  if (!accounting_path.empty()) {
    std::ofstream out(accounting_path);
    out << accounting.to_json().dump(2) << '\n';
    std::cout << "accounting ledger written to " << accounting_path << '\n';
  }

  std::cout << "\ndrain complete: " << completed << " completed, " << failed
            << " failed, " << preemptions << " preemption(s), " << quarantined
            << " quarantined, " << killed << " killed, " << recovered
            << " recovered\n";
  return 0;
}
