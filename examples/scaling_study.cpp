// scaling_study: a user-configurable rank sweep over a simulated dataset,
// printing Figure-7/9-style tables for GraphFromFasta, ReadsToTranscripts
// and the distributed Bowtie step on the simulated cluster.
//
// Usage:
//   scaling_study [--genes 150] [--coverage 15] [--k 25]
//                 [--ranks 1,2,4,8,16] [--threads-per-rank 16]

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "align/mpi_bowtie.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "inchworm/inchworm.hpp"
#include "kmer/counter.hpp"
#include "seq/fasta.hpp"
#include "sim/transcriptome.hpp"
#include "simpi/context.hpp"
#include "util/cli.hpp"

namespace {

std::vector<int> parse_ranks(const std::string& csv) {
  std::vector<int> out;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) out.push_back(std::stoi(token));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  const auto args = util::CliArgs::parse(argc, argv);
  const auto genes = static_cast<std::size_t>(args.get_int("genes", 150));
  const double coverage = args.get_double("coverage", 15.0);
  const int k = static_cast<int>(args.get_int("k", 25));
  const int threads_per_rank = static_cast<int>(args.get_int("threads-per-rank", 16));
  const auto ranks = parse_ranks(args.get_string("ranks", "1,2,4,8,16"));

  // Workload: simulate, count k-mers, assemble contigs once; the sweep
  // re-runs only the Chrysalis stages, as the paper's benchmarks do.
  auto preset = sim::preset("tiny");
  preset.name = "scaling";
  preset.transcriptome.num_genes = genes;
  preset.reads.coverage = coverage;
  const auto data = sim::simulate_dataset(preset);

  kmer::CounterOptions copt;
  copt.k = k;
  kmer::KmerCounter counter(copt);
  counter.add_sequences(data.reads.reads);

  inchworm::InchwormOptions iopt;
  iopt.k = k;
  inchworm::Inchworm assembler(iopt);
  assembler.load_counts(counter.dump());
  const auto contigs = assembler.assemble();

  const std::string work_dir = "/tmp/trinity_scaling";
  std::filesystem::create_directories(work_dir);
  const std::string reads_path = work_dir + "/reads.fa";
  seq::write_fasta(reads_path, data.reads.reads);

  std::cout << "workload: " << data.reads.reads.size() << " reads, " << contigs.size()
            << " Inchworm contigs; " << threads_per_rank
            << " modeled threads per node\n\n";

  std::printf("%6s | %12s %12s %12s | %12s %12s | %12s\n", "nodes", "gff_loop1(s)",
              "gff_loop2(s)", "gff_total(s)", "r2t_loop(s)", "r2t_total(s)",
              "bowtie(s)");
  std::printf("%.6s-+-%.38s-+-%.25s-+-%.12s\n", "------",
              "--------------------------------------",
              "-------------------------", "------------");

  for (const int nranks : ranks) {
    chrysalis::GraphFromFastaOptions gff;
    gff.k = k;
    gff.model_threads_per_rank = threads_per_rank;
    chrysalis::ReadsToTranscriptsOptions r2t;
    r2t.k = k;
    r2t.model_threads_per_rank = threads_per_rank;
    align::AlignerOptions aopt;

    chrysalis::GffTiming gff_timing;
    chrysalis::R2TTiming r2t_timing;
    align::DistributedBowtieTiming bowtie_timing;

    simpi::run(nranks, [&](simpi::Context& ctx) {
      const auto bowtie = align::distributed_bowtie(ctx, contigs, data.reads.reads, aopt);
      const auto g = chrysalis::run_hybrid(ctx, contigs, counter, gff);
      const auto r =
          chrysalis::run_hybrid(ctx, contigs, g.components, reads_path, r2t, work_dir);
      if (ctx.rank() == 0) {
        gff_timing = g.timing;
        r2t_timing = r.timing;
        bowtie_timing = bowtie.timing;
      }
    });

    std::printf("%6d | %12.3f %12.3f %12.3f | %12.3f %12.3f | %12.3f\n", nranks,
                gff_timing.loop1.max(), gff_timing.loop2.max(), gff_timing.total_seconds(),
                r2t_timing.main_loop.max(), r2t_timing.total_seconds(),
                bowtie_timing.total_seconds());
  }
  std::cout << "\ntimes are virtual seconds on the simulated cluster (measured per-rank\n"
               "CPU work / modeled threads + alpha-beta communication model).\n";
  return 0;
}
