// scaling_study: a user-configurable rank sweep over a simulated dataset,
// printing Figure-7/9-style tables for GraphFromFasta, ReadsToTranscripts
// and the distributed Bowtie step on the simulated cluster.
//
// Usage:
//   scaling_study [--genes 150] [--coverage 15] [--k 25]
//                 [--ranks 1,2,4,8,16] [--threads-per-rank 16]

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "align/mpi_bowtie.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "inchworm/inchworm.hpp"
#include "kmer/counter.hpp"
#include "seq/fasta.hpp"
#include "pipeline/config.hpp"
#include "sim/transcriptome.hpp"
#include "simpi/context.hpp"

namespace {

std::vector<int> parse_ranks(const std::string& csv) {
  std::vector<int> out;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    try {
      out.push_back(std::stoi(token));
    } catch (const std::exception&) {
      throw trinity::ConfigError("ranks",
                                 "expected a comma-separated integer list, got '" + csv + "'");
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("scaling_study",
             "rank sweep over a simulated dataset: Figure-7/9-style Chrysalis tables");
  cfg.flag_int("genes", 150, "genes to simulate")
      .flag_double("coverage", 15.0, "read coverage")
      .flag_int("k", 25, "k-mer size")
      .flag_int("threads-per-rank", 16, "modeled threads per node")
      .flag_string("ranks", "1,2,4,8,16", "comma-separated rank counts to sweep");
  cfg.alias("model-threads", "threads-per-rank").alias("nprocs", "ranks");
  std::vector<int> ranks;
  try {
    cfg.parse_cli(argc, argv);
    ranks = parse_ranks(cfg.get_string("ranks"));
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested()) {
    std::cout << cfg.help_text();
    return 0;
  }
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));
  const double coverage = cfg.get_double("coverage");
  const int k = static_cast<int>(cfg.get_int("k"));
  const int threads_per_rank = static_cast<int>(cfg.get_int("threads-per-rank"));

  // Workload: simulate, count k-mers, assemble contigs once; the sweep
  // re-runs only the Chrysalis stages, as the paper's benchmarks do.
  auto preset = sim::preset("tiny");
  preset.name = "scaling";
  preset.transcriptome.num_genes = genes;
  preset.reads.coverage = coverage;
  const auto data = sim::simulate_dataset(preset);

  kmer::CounterOptions copt;
  copt.k = k;
  kmer::KmerCounter counter(copt);
  counter.add_sequences(data.reads.reads);

  inchworm::InchwormOptions iopt;
  iopt.k = k;
  inchworm::Inchworm assembler(iopt);
  assembler.load_counts(counter.dump());
  const auto contigs = assembler.assemble();

  const std::string work_dir = "/tmp/trinity_scaling";
  std::filesystem::create_directories(work_dir);
  const std::string reads_path = work_dir + "/reads.fa";
  seq::write_fasta(reads_path, data.reads.reads);

  std::cout << "workload: " << data.reads.reads.size() << " reads, " << contigs.size()
            << " Inchworm contigs; " << threads_per_rank
            << " modeled threads per node\n\n";

  std::printf("%6s | %12s %12s %12s | %12s %12s | %12s\n", "nodes", "gff_loop1(s)",
              "gff_loop2(s)", "gff_total(s)", "r2t_loop(s)", "r2t_total(s)",
              "bowtie(s)");
  std::printf("%.6s-+-%.38s-+-%.25s-+-%.12s\n", "------",
              "--------------------------------------",
              "-------------------------", "------------");

  for (const int nranks : ranks) {
    chrysalis::GraphFromFastaOptions gff;
    gff.k = k;
    gff.model_threads_per_rank = threads_per_rank;
    chrysalis::ReadsToTranscriptsOptions r2t;
    r2t.k = k;
    r2t.model_threads_per_rank = threads_per_rank;
    align::AlignerOptions aopt;

    chrysalis::GffTiming gff_timing;
    chrysalis::R2TTiming r2t_timing;
    align::DistributedBowtieTiming bowtie_timing;

    simpi::run(nranks, [&](simpi::Context& ctx) {
      const auto bowtie = align::distributed_bowtie(ctx, contigs, data.reads.reads, aopt);
      const auto g = chrysalis::run_hybrid(ctx, contigs, counter, gff);
      const auto r =
          chrysalis::run_hybrid(ctx, contigs, g.components, reads_path, r2t, work_dir);
      if (ctx.rank() == 0) {
        gff_timing = g.timing;
        r2t_timing = r.timing;
        bowtie_timing = bowtie.timing;
      }
    });

    std::printf("%6d | %12.3f %12.3f %12.3f | %12.3f %12.3f | %12.3f\n", nranks,
                gff_timing.loop1.max(), gff_timing.loop2.max(), gff_timing.total_seconds(),
                r2t_timing.main_loop.max(), r2t_timing.total_seconds(),
                bowtie_timing.total_seconds());
  }
  std::cout << "\ntimes are virtual seconds on the simulated cluster (measured per-rank\n"
               "CPU work / modeled threads + alpha-beta communication model).\n";
  return 0;
}
