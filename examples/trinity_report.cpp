// trinity_report: summarize the JSON run report a pipeline run emits
// (<work_dir>/run_report.json; schema in docs/OBSERVABILITY.md).
//
// Prints the per-stage load-imbalance table — max/mean rank virtual time,
// skew ratio, communication volume, blocked ("wait") time — plus the
// Chrysalis pooling volumes, without re-running anything.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/quickstart --ranks 4          # produces the report
//   ./build/examples/trinity_report /tmp/trinity_quickstart/run_report.json
//
// Flags:
//   --json       re-emit the parsed report compactly on stdout instead of
//                the summary (round-trip check / piping into jq)
//   --trace      when the report carries a "trace_file" field (a run with
//                PipelineOptions::trace_path set), load that Chrome trace
//                and append the critical-path analysis (per-stage critical
//                rank, per-rank blocked time, top-5 spans) to the summary
//   --aggregate  treat the positional argument as a DIRECTORY, load every
//                run_report.json under it recursively (a trinity_serve root
//                with its per-tenant/per-job work dirs), and print the
//                per-tenant roll-up table instead — jobs, wall/CPU seconds,
//                communication bytes, retries, preemptions, worst skew.
//                Combines with --json to emit the aggregate document.

#include <algorithm>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "pipeline/config.hpp"
#include "pipeline/run_report.hpp"
#include "trace/analyze.hpp"
#include "trace/chrome_trace.hpp"

namespace {

// The report stores trace_path as given (work-dir-relative by default), so a
// moved work dir keeps working: resolve it against the report's directory.
std::string resolve_trace_path(const std::string& report_path,
                               const std::string& trace_file) {
  if (!trace_file.empty() && trace_file.front() == '/') return trace_file;
  const auto slash = report_path.find_last_of('/');
  if (slash == std::string::npos) return trace_file;
  return report_path.substr(0, slash + 1) + trace_file;
}

// Every run_report.json under `root`, sorted by path so the aggregate is
// deterministic regardless of directory iteration order.
std::vector<std::string> find_reports(const std::string& root) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().filename() == "run_report.json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

int aggregate_main(const std::string& root, bool as_json) {
  using namespace trinity;
  std::vector<util::Json> reports;
  for (const auto& path : find_reports(root)) {
    reports.push_back(pipeline::load_run_report(path));
  }
  const util::Json aggregate = pipeline::aggregate_run_reports(reports);
  if (as_json) {
    std::cout << aggregate.dump() << '\n';
  } else {
    pipeline::summarize_aggregate(aggregate, std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("trinity_report", "summarize the JSON run report a pipeline run emits");
  cfg.usage("<run_report.json | --aggregate dir>")
      .flag_bool("json", false, "re-emit the parsed report compactly instead of the summary")
      .flag_bool("trace", false,
                 "load the report's trace_file and append the critical-path analysis")
      .flag_bool("aggregate", false,
                 "recursively roll every run_report.json under the given "
                 "directory into one per-tenant table");
  try {
    cfg.parse_cli(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested() || cfg.positional().empty()) {
    std::cout << cfg.help_text();
    return cfg.help_requested() ? 0 : 2;
  }
  const std::string path = cfg.positional().front();
  try {
    if (cfg.get_bool("aggregate")) return aggregate_main(path, cfg.get_bool("json"));
    const util::Json report = pipeline::load_run_report(path);
    if (cfg.get_bool("json")) {
      std::cout << report.dump() << '\n';
    } else {
      pipeline::summarize_report(report, std::cout);
      if (cfg.get_bool("trace")) {
        const util::Json* trace_file = report.find("trace_file");
        if (trace_file == nullptr) {
          std::cerr << "trinity_report: report has no trace_file field "
                       "(run with PipelineOptions::trace_path set)\n";
          return 1;
        }
        const std::string trace_path =
            resolve_trace_path(path, trace_file->as_string());
        const auto events = trace::read_chrome_trace(trace_path);
        std::cout << '\n' << trace::format_analysis(trace::analyze_trace(events, 5));
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "trinity_report: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
