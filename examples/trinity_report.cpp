// trinity_report: summarize the JSON run report a pipeline run emits
// (<work_dir>/run_report.json; schema in docs/OBSERVABILITY.md).
//
// Prints the per-stage load-imbalance table — max/mean rank virtual time,
// skew ratio, communication volume, blocked ("wait") time — plus the
// Chrysalis pooling volumes, without re-running anything.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/quickstart --ranks 4          # produces the report
//   ./build/examples/trinity_report /tmp/trinity_quickstart/run_report.json
//
// Flags:
//   --json    re-emit the parsed report compactly on stdout instead of the
//             summary (round-trip check / piping into jq)

#include <exception>
#include <iostream>
#include <string>

#include "pipeline/run_report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  const auto args = util::CliArgs::parse(argc, argv);
  if (args.positional().empty()) {
    std::cerr << "usage: trinity_report <run_report.json> [--json]\n";
    return 2;
  }
  const std::string path = args.positional().front();
  try {
    const util::Json report = pipeline::load_run_report(path);
    if (args.get_bool("json", false)) {
      std::cout << report.dump() << '\n';
    } else {
      pipeline::summarize_report(report, std::cout);
    }
  } catch (const std::exception& e) {
    std::cerr << "trinity_report: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
