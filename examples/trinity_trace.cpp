// trinity_trace: mine a Chrome trace emitted by a pipeline run
// (PipelineOptions::trace_path; format in docs/OBSERVABILITY.md).
//
// Prints the per-stage cross-rank critical path (which rank the stage's
// closing collective waited for), per-rank busy/blocked totals, and the
// top-N longest spans — the paper's Figure 7/9 max-vs-min diagnosis from a
// single artifact. The same file loads interactively in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/quickstart --ranks 4 --trace
//   ./build/examples/trinity_trace /tmp/trinity_quickstart/trace.json
//
// Flags:
//   --top N       how many spans to list (default 5)
//   --validate    run the Chrome trace-event shape checker instead of the
//                 analysis; exit 0 iff the file is well-formed (the
//                 scripts/check.sh trace gate)

#include <exception>
#include <iostream>
#include <string>

#include "pipeline/config.hpp"
#include "trace/analyze.hpp"
#include "trace/chrome_trace.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("trinity_trace", "mine a Chrome trace emitted by a pipeline run");
  cfg.usage("<trace.json>")
      .flag_int("top", 5, "spans to list")
      .flag_bool("validate", false, "run the trace-event shape checker instead");
  try {
    cfg.parse_cli(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested() || cfg.positional().empty()) {
    std::cout << cfg.help_text();
    return cfg.help_requested() ? 0 : 2;
  }
  const std::string path = cfg.positional().front();
  try {
    if (cfg.get_bool("validate")) {
      const trace::TraceShapeReport shape = trace::validate_chrome_trace_file(path);
      if (!shape.ok()) {
        std::cerr << "trinity_trace: " << path << " failed the shape check:\n";
        for (const auto& error : shape.errors) std::cerr << "  " << error << '\n';
        return 1;
      }
      std::cout << path << ": well-formed Chrome trace (" << shape.num_events
                << " events)\n";
      return 0;
    }
    const auto events = trace::read_chrome_trace(path);
    const auto top_n = static_cast<std::size_t>(cfg.get_int("top"));
    std::cout << trace::format_analysis(trace::analyze_trace(events, top_n));
  } catch (const std::exception& e) {
    std::cerr << "trinity_trace: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
