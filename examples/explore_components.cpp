// explore_components: QC / inspection tool for Chrysalis output.
//
// Runs the pipeline (on a reads file, or a simulated dataset when no file
// is given) and prints a per-component table: contigs, bases, de Bruijn
// graph shape, reads assigned, transcripts reconstructed, and paired-end
// support for the longest transcript — the view a user debugging a bad
// assembly actually wants.
//
// Usage:
//   explore_components [reads.fa] [--ranks 4] [--k 25] [--top 15]

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "butterfly/butterfly.hpp"
#include "chrysalis/debruijn.hpp"
#include "pipeline/config.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "seq/fasta.hpp"
#include "sim/transcriptome.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  pipeline::PipelineOptions defaults;
  defaults.work_dir = "/tmp/trinity_explore";
  Config cfg("explore_components", "per-component QC table for Chrysalis output");
  cfg.usage("[reads.fa]")
      .with_pipeline(defaults)
      .flag_int("top", 15, "components to list")
      .flag_int("genes", 30, "genes to simulate when no reads file is given");
  pipeline::PipelineOptions options;
  try {
    cfg.parse_cli(argc, argv);
    if (!cfg.help_requested()) options = cfg.pipeline_options();
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested()) {
    std::cout << cfg.help_text();
    return 0;
  }
  const int k = options.k;
  const auto top = static_cast<std::size_t>(cfg.get_int("top"));

  std::vector<seq::Sequence> reads;
  if (!cfg.positional().empty()) {
    reads = seq::read_all(cfg.positional().front());
    std::cout << "loaded " << reads.size() << " reads from " << cfg.positional().front()
              << "\n";
  } else {
    auto preset = sim::preset("tiny");
    preset.transcriptome.num_genes = static_cast<std::size_t>(cfg.get_int("genes"));
    reads = sim::simulate_dataset(preset).reads.reads;
    std::cout << "no input given; simulated " << reads.size() << " reads ('tiny' preset)\n";
  }

  const auto result = pipeline::run_pipeline(reads, options);

  // Reads and transcripts per component.
  std::vector<std::size_t> reads_of(result.components.num_components(), 0);
  for (const auto& a : result.assignments) {
    if (a.component >= 0) ++reads_of[static_cast<std::size_t>(a.component)];
  }
  std::vector<std::size_t> transcripts_of(result.components.num_components(), 0);
  std::vector<std::size_t> longest_of(result.components.num_components(), 0);
  for (const auto& t : result.transcripts) {
    // Names follow comp<id>_seq<j>.
    const auto us = t.name.find('_');
    const auto comp = static_cast<std::size_t>(std::stoul(t.name.substr(4, us - 4)));
    ++transcripts_of[comp];
    longest_of[comp] = std::max(longest_of[comp], t.bases.size());
  }

  // Rank components by total bases.
  std::vector<std::size_t> order(result.components.num_components());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto comp_bases = [&](std::size_t c) {
    std::size_t bases = 0;
    for (const auto id : result.components.components[c].contig_ids) {
      bases += result.contigs[static_cast<std::size_t>(id)].bases.size();
    }
    return bases;
  };
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return comp_bases(a) > comp_bases(b); });

  std::cout << "\n" << result.components.num_components() << " components from "
            << result.contigs.size() << " contigs; " << result.transcripts.size()
            << " transcripts total. Top " << std::min(top, order.size()) << ":\n\n";
  std::printf("%6s %8s %9s %8s %8s %9s %7s %8s %9s\n", "comp", "contigs", "bases", "nodes",
              "edges", "sources", "reads", "isoform", "longest");
  for (std::size_t i = 0; i < std::min(top, order.size()); ++i) {
    const std::size_t c = order[i];
    const auto& comp = result.components.components[c];
    std::vector<seq::Sequence> comp_contigs;
    for (const auto id : comp.contig_ids) {
      comp_contigs.push_back(result.contigs[static_cast<std::size_t>(id)]);
    }
    const chrysalis::DeBruijnGraph graph(comp_contigs, k);
    std::printf("%6d %8zu %9zu %8zu %8zu %9zu %7zu %8zu %9zu\n", comp.id,
                comp.contig_ids.size(), comp_bases(c), graph.num_nodes(), graph.num_edges(),
                graph.source_nodes().size(), reads_of[c], transcripts_of[c], longest_of[c]);
  }

  // Paired-end support detail for the biggest component's longest transcript.
  if (!order.empty() && !result.transcripts.empty()) {
    const std::size_t c = order[0];
    const seq::Sequence* longest = nullptr;
    for (const auto& t : result.transcripts) {
      if (t.name.rfind("comp" + std::to_string(c) + "_", 0) == 0 &&
          (!longest || t.bases.size() > longest->bases.size())) {
        longest = &t;
      }
    }
    if (longest) {
      std::vector<const seq::Sequence*> comp_reads;
      for (const auto& a : result.assignments) {
        if (a.component == static_cast<std::int32_t>(c)) {
          comp_reads.push_back(&reads[static_cast<std::size_t>(a.read_index)]);
        }
      }
      std::cout << "\nlargest component " << c << ": transcript '" << longest->name << "' ("
                << longest->bases.size() << " bp) is spanned by "
                << butterfly::paired_support(*longest, comp_reads)
                << " proper read pairs\n";
    }
  }
  return 0;
}
