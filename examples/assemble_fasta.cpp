// assemble_fasta: the downstream-user entry point. Assembles transcripts
// de novo from any FASTA/FASTQ read file, in the original shared-memory
// configuration or the paper's hybrid configuration.
//
// Usage:
//   assemble_fasta <reads.fa|reads.fq> [--out transcripts.fa]
//                  [--ranks N] [--k 25] [--min-kmer-count 2]
//                  [--work-dir DIR]
//                  [--gff-distribution crr|block|dynamic]
//                  [--gff-hybrid-setup] [--r2t-strategy redundant|master-slave]
//                  [--r2t-output concat|collective] [--bowtie-split targets|reads]
//                  [--min-node-support N] [--require-paired-support]
//
// With --ranks 1 (default) this is the original OpenMP-only Trinity path;
// with --ranks N > 1 the Chrysalis stages run hybrid over N simulated
// nodes, exactly like `Trinity.pl --nprocs N` in the paper. The strategy
// flags select the paper's published schemes (defaults), its discarded
// prototypes, or its future-work directions (see DESIGN.md).

#include <iostream>

#include "pipeline/trinity_pipeline.hpp"
#include "seq/fasta.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  const auto args = util::CliArgs::parse(argc, argv);
  if (args.positional().empty()) {
    std::cerr << "usage: assemble_fasta <reads.fa|reads.fq> [--out transcripts.fa]\n"
              << "                      [--ranks N] [--k 25] [--min-kmer-count 2]\n"
              << "                      [--work-dir DIR]\n";
    return 2;
  }
  const std::string reads_path = args.positional().front();
  const std::string out_path = args.get_string("out", "transcripts.fa");

  pipeline::PipelineOptions options;
  options.k = static_cast<int>(args.get_int("k", 25));
  options.nranks = static_cast<int>(args.get_int("ranks", 1));
  options.min_kmer_count = static_cast<std::uint32_t>(args.get_int("min-kmer-count", 2));
  options.work_dir = args.get_string("work-dir", "/tmp/trinity_assemble");

  const std::string dist = args.get_string("gff-distribution", "crr");
  if (dist == "block") {
    options.gff_distribution = chrysalis::Distribution::kBlock;
  } else if (dist == "dynamic") {
    options.gff_distribution = chrysalis::Distribution::kDynamic;
  } else if (dist != "crr") {
    std::cerr << "unknown --gff-distribution '" << dist << "'\n";
    return 2;
  }
  options.gff_hybrid_setup = args.get_bool("gff-hybrid-setup", false);
  const std::string strategy = args.get_string("r2t-strategy", "redundant");
  if (strategy == "master-slave") {
    options.r2t_strategy = chrysalis::R2TStrategy::kMasterSlave;
  } else if (strategy != "redundant") {
    std::cerr << "unknown --r2t-strategy '" << strategy << "'\n";
    return 2;
  }
  if (args.get_string("r2t-output", "concat") == "collective") {
    options.r2t_output_mode = chrysalis::R2TOutputMode::kCollective;
  }
  if (args.get_string("bowtie-split", "targets") == "reads") {
    options.bowtie_split = align::BowtieSplit::kReads;
  }
  options.butterfly_min_node_support =
      static_cast<std::uint32_t>(args.get_int("min-node-support", 0));
  options.butterfly_require_paired_support = args.get_bool("require-paired-support", false);

  try {
    const auto result = pipeline::run_pipeline_from_file(reads_path, options);

    std::vector<std::size_t> lengths;
    std::size_t bases = 0;
    for (const auto& t : result.transcripts) {
      lengths.push_back(t.bases.size());
      bases += t.bases.size();
    }
    seq::write_fasta(out_path, result.transcripts, 70);

    std::cout << "assembled " << result.transcripts.size() << " transcripts (" << bases
              << " bp, N50 " << util::n50(lengths) << ") from "
              << result.assignments.size() << " reads\n"
              << "components: " << result.components.num_components() << '\n'
              << "output: " << out_path << '\n';
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
