// assemble_fasta: the downstream-user entry point. Assembles transcripts
// de novo from any FASTA/FASTQ read file, in the original shared-memory
// configuration or the paper's hybrid configuration.
//
// Usage:
//   assemble_fasta <reads.fa|reads.fq> [--out transcripts.fa]
//                  [--ranks N] [--k 25] [--min-kmer-count 2]
//                  [--work-dir DIR]
//                  [--gff-distribution crr|block|dynamic]
//                  [--gff-hybrid-setup] [--r2t-strategy redundant|master-slave]
//                  [--r2t-output concat|collective] [--bowtie-split targets|reads]
//                  [--min-node-support N] [--require-paired-support]
//
// With --ranks 1 (default) this is the original OpenMP-only Trinity path;
// with --ranks N > 1 the Chrysalis stages run hybrid over N simulated
// nodes, exactly like `Trinity.pl --nprocs N` in the paper. The strategy
// flags select the paper's published schemes (defaults), its discarded
// prototypes, or its future-work directions (see DESIGN.md).

#include <iostream>

#include "pipeline/config.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "seq/fasta.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  pipeline::PipelineOptions defaults;
  defaults.work_dir = "/tmp/trinity_assemble";
  Config cfg("assemble_fasta",
             "assemble transcripts de novo from a FASTA/FASTQ read file");
  cfg.usage("<reads.fa|reads.fq>")
      .with_pipeline(defaults)
      .flag_string("out", "transcripts.fa", "output transcript FASTA");
  pipeline::PipelineOptions options;
  try {
    cfg.parse_cli(argc, argv);
    if (!cfg.help_requested()) options = cfg.pipeline_options();
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested() || cfg.positional().empty()) {
    std::cout << cfg.help_text();
    return cfg.help_requested() ? 0 : 2;
  }
  for (const auto& note : cfg.deprecation_notes()) {
    std::cerr << "assemble_fasta: " << note << '\n';
  }
  const std::string reads_path = cfg.positional().front();
  const std::string out_path = cfg.get_string("out");

  try {
    const auto result = pipeline::run_pipeline_from_file(reads_path, options);

    std::vector<std::size_t> lengths;
    std::size_t bases = 0;
    for (const auto& t : result.transcripts) {
      lengths.push_back(t.bases.size());
      bases += t.bases.size();
    }
    seq::write_fasta(out_path, result.transcripts, 70);

    std::cout << "assembled " << result.transcripts.size() << " transcripts (" << bases
              << " bp, N50 " << util::n50(lengths) << ") from "
              << result.assignments.size() << " reads\n"
              << "components: " << result.components.num_components() << '\n'
              << "output: " << out_path << '\n';
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
