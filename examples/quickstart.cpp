// Quickstart: simulate a small RNA-seq dataset, run the full parallel
// Trinity pipeline (hybrid Chrysalis on 4 simulated nodes), and report
// assembly statistics plus how well the reference was recovered.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--ranks 4] [--genes 40] [--k 25]
//
// Checkpoint/restart (each completed stage is recorded in
// <work-dir>/run_manifest.jsonl unless --no-checkpoint):
//   quickstart --resume                  # skip stages a previous run finished
//   quickstart --fault-rank 1 --fault-stage chrysalis.graph_from_fasta
//              [--fault-op allgatherv --fault-at 1] [--max-attempts 3]
// The fault flags kill the given rank mid-stage (by default at its first
// communication); the pipeline's retry driver then re-launches the stage.
//
// Observability: --trace writes <work-dir>/trace.json, a Chrome trace-event
// timeline of the run (docs/OBSERVABILITY.md "Distributed trace").

#include <cstdio>
#include <iostream>

#include "pipeline/config.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "sim/transcriptome.hpp"
#include "util/stats.hpp"
#include "validate/validate.hpp"

int main(int argc, char** argv) {
  using namespace trinity;
  pipeline::PipelineOptions defaults;
  defaults.nranks = 4;
  defaults.work_dir = "/tmp/trinity_quickstart";
  defaults.fault_stage = "chrysalis.graph_from_fasta";
  Config cfg("quickstart",
             "simulate a small RNA-seq dataset and run the full parallel Trinity "
             "pipeline");
  cfg.with_pipeline(defaults).flag_int("genes", 40, "genes to simulate");
  try {
    cfg.parse_cli(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested()) {
    std::cout << cfg.help_text();
    return 0;
  }
  for (const auto& note : cfg.deprecation_notes()) std::cerr << "quickstart: " << note << '\n';
  const auto genes = static_cast<std::size_t>(cfg.get_int("genes"));

  // 1. Simulate a transcriptome and an RNA-seq read set.
  auto preset = sim::preset("tiny");
  preset.transcriptome.num_genes = genes;
  preset.reads.coverage = 25.0;
  preset.reads.expression_sigma = 0.8;
  const auto data = sim::simulate_dataset(preset);
  std::cout << "simulated " << data.transcriptome.genes.size() << " genes, "
            << data.transcriptome.transcripts.size() << " isoforms, "
            << data.reads.reads.size() << " reads\n";

  // 2. Run the pipeline: Jellyfish -> Inchworm -> Chrysalis -> Butterfly.
  pipeline::PipelineOptions options;
  try {
    options = cfg.pipeline_options();
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  const int ranks = options.nranks;
  const auto result = pipeline::run_pipeline(data.reads.reads, options);

  if (!result.stages_resumed.empty()) {
    std::cout << "\nresumed from checkpoint, skipped:";
    for (const auto& s : result.stages_resumed) std::cout << ' ' << s;
    std::cout << '\n';
  }
  if (result.stage_retries > 0) {
    std::cout << "recovered from " << result.stage_retries
              << " injected rank failure(s) by re-launching the stage\n";
  }

  std::vector<std::size_t> contig_lengths;
  for (const auto& c : result.contigs) contig_lengths.push_back(c.bases.size());
  std::cout << "\nInchworm:  " << result.contigs.size()
            << " contigs, N50 = " << util::n50(contig_lengths) << " bp\n";
  std::cout << "Chrysalis: " << result.components.num_components() << " components ("
            << (ranks > 1 ? "hybrid simpi+OpenMP" : "OpenMP only") << ", " << ranks
            << " rank(s))\n";
  std::cout << "Butterfly: " << result.transcripts.size() << " transcripts\n";

  // 3. Compare against the simulated ground truth.
  const auto cmp = validate::compare_to_reference(result.transcripts,
                                                  data.transcriptome.transcripts,
                                                  data.transcriptome.gene_of_transcript);
  std::cout << "\nfull-length genes:    " << cmp.full_length_genes << " / "
            << data.transcriptome.genes.size() << '\n'
            << "full-length isoforms: " << cmp.full_length_isoforms << " / "
            << data.transcriptome.transcripts.size() << '\n'
            << "fused transcripts:    " << cmp.fused_isoforms << '\n';

  // 4. Show the per-stage resource trace (the Collectl-style view).
  std::cout << "\nper-stage trace:\n";
  std::printf("%-32s %10s %14s\n", "stage", "wall(s)", "rss_peak(MB)");
  for (const auto& phase : result.trace) {
    std::printf("%-32s %10.3f %14.1f\n", phase.name.c_str(), phase.wall_seconds,
                static_cast<double>(phase.rss_peak) / (1024.0 * 1024.0));
  }
  std::cout << "\nmodeled Chrysalis time on the simulated cluster: "
            << result.chrysalis_virtual_seconds() << " s\n";
  if (!result.trace_file.empty()) {
    std::cout << "trace written to " << result.trace_file
              << " (open in Perfetto, or run trinity_trace on it)\n";
  }
  return 0;
}
