// trinity_stages: run the Trinity pipeline one stage at a time, exchanging
// data through files — exactly how Trinity's own executables compose
// ("the files being output from one software module are then consumed by
// the following module"). Each subcommand is restartable, so a failed or
// tuned stage can be rerun without repeating the others.
//
// Usage:
//   trinity_stages jellyfish <reads.fa>              --out kmers.bin [--k 25]
//   trinity_stages inchworm  <kmers.bin>             --out inchworm.fa [--k 25]
//   trinity_stages chrysalis <inchworm.fa> <reads.fa> --out-dir DIR
//                            [--nprocs N] [--k 25] [--sam bowtie.sam]
//                            [--gff-sharding pooled|overlap|owner]
//                            [--resume] [--fault-rank R [--fault-op OP
//                            --fault-at N]] [--max-attempts M]
//   trinity_stages butterfly <inchworm.fa> <DIR> <reads.fa> --out Trinity.fa
//                            [--k 25]
//
// The chrysalis stage writes <DIR>/components.txt and
// <DIR>/readsToComponents.out.tsv; butterfly consumes both. --nprocs is
// the paper's Trinity.pl extension: > 1 runs the hybrid Chrysalis.
//
// Chrysalis also records a checkpoint manifest in DIR: --resume skips the
// whole stage when the recorded inputs/outputs still validate, and the
// fault flags kill rank R mid-run (at its first communication unless
// --fault-op/--fault-at pick a specific collective entry), after which the
// stage is re-launched up to --max-attempts times.

#include <algorithm>
#include <filesystem>
#include <iostream>

#include "align/mpi_bowtie.hpp"
#include "align/sam_io.hpp"
#include "butterfly/butterfly.hpp"
#include "checkpoint/fingerprint.hpp"
#include "checkpoint/manifest.hpp"
#include "chrysalis/components_io.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "chrysalis/scaffold.hpp"
#include "inchworm/inchworm.hpp"
#include "kmer/counter.hpp"
#include "seq/fasta.hpp"
#include "simpi/context.hpp"
#include "pipeline/config.hpp"
#include "util/hash.hpp"

namespace {

using namespace trinity;

int usage() {
  std::cerr << "usage: trinity_stages <jellyfish|inchworm|chrysalis|butterfly> ...\n"
            << "  jellyfish <reads.fa> --out kmers.bin [--k 25]\n"
            << "  inchworm  <kmers.bin> --out inchworm.fa [--k 25]\n"
            << "  chrysalis <inchworm.fa> <reads.fa> --out-dir DIR [--nprocs N] [--k 25]\n"
            << "            [--resume] [--fault-rank R [--fault-op OP --fault-at N]]\n"
            << "            [--max-attempts M]\n"
            << "  butterfly <inchworm.fa> <DIR> <reads.fa> --out Trinity.fa [--k 25]\n";
  return 2;
}

int stage_jellyfish(const Config& cfg, int k) {
  const auto reads = seq::read_all(cfg.positional()[1]);
  kmer::CounterOptions o;
  o.k = k;
  kmer::KmerCounter counter(o);
  counter.add_sequences(reads);
  const auto counts = counter.dump();
  std::string out = cfg.get_string("out");
  if (out.empty()) out = "kmers.bin";
  kmer::write_dump_binary(out, counts, k);
  std::cout << "jellyfish: " << reads.size() << " reads -> " << counts.size()
            << " distinct " << k << "-mers -> " << out << '\n';
  return 0;
}

int stage_inchworm(const Config& cfg, int k) {
  const auto counts = kmer::read_dump_binary(cfg.positional()[1], k);
  inchworm::InchwormOptions o;
  o.k = k;
  o.min_contig_length = static_cast<std::size_t>(k);
  inchworm::Inchworm assembler(o);
  assembler.load_counts(counts);
  const auto contigs = assembler.assemble();
  std::string out = cfg.get_string("out");
  if (out.empty()) out = "inchworm.fa";
  seq::write_fasta(out, contigs);
  std::cout << "inchworm: " << counts.size() << " k-mers -> " << contigs.size()
            << " contigs (" << assembler.stats().bases_assembled << " bp) -> " << out << '\n';
  return 0;
}

int stage_chrysalis(const Config& cfg, int k) {
  const auto contigs = seq::read_all(cfg.positional()[1]);
  const std::string reads_path = cfg.positional()[2];
  const auto reads = seq::read_all(reads_path);
  const std::string out_dir = cfg.get_string("out-dir");
  std::filesystem::create_directories(out_dir);
  const int nprocs = static_cast<int>(cfg.get_int("ranks"));

  kmer::CounterOptions copt;
  copt.k = k;
  kmer::KmerCounter counter(copt);
  counter.add_sequences(reads);

  chrysalis::GraphFromFastaOptions gff;
  gff.k = k;
  const std::string sharding = cfg.get_string("gff-sharding");
  if (!chrysalis::sharding_from_string(sharding, &gff.sharding)) {
    throw ConfigError("gff-sharding",
                      "must be one of pooled, overlap, owner (got '" + sharding + "')");
  }
  chrysalis::ReadsToTranscriptsOptions r2t;
  r2t.k = k;

  // Checkpoint: the stage's outputs in out_dir, fingerprinted by its
  // options and the content of both inputs (which live outside out_dir, so
  // they fold into the fingerprint instead of the artifact list).
  const std::uint64_t fp = checkpoint::FingerprintBuilder()
                               .add("stage", std::string_view("chrysalis"))
                               .add("k", static_cast<std::int64_t>(k))
                               .add("inchworm", util::fnv1a_file(cfg.positional()[1]))
                               .add("reads", util::fnv1a_file(reads_path))
                               .digest();
  const std::string manifest_path = out_dir + "/run_manifest.jsonl";
  auto manifest = checkpoint::RunManifest::load(manifest_path);
  if (cfg.get_bool("resume")) {
    const auto* rec = manifest.find("chrysalis");
    if (rec != nullptr &&
        checkpoint::validate_stage(*rec, out_dir, fp) == checkpoint::StageCheck::kValid) {
      std::cout << "chrysalis: checkpoint valid; skipping (outputs in " << out_dir << ")\n";
      return 0;
    }
    std::cout << "chrysalis: checkpoint invalid or absent; running\n";
  }

  simpi::FaultPlan fault = cfg.fault_plan();
  if (fault.enabled()) fault.arm();  // one fire across every re-launch below
  const int max_attempts = static_cast<int>(cfg.get_int("max-attempts"));

  chrysalis::ComponentSet components;
  std::size_t assigned = 0;
  int attempts = 1;
  // An existing Bowtie SAM file can be consumed instead of realigning —
  // the file-exchange interop Trinity's own stages rely on.
  const std::string sam_path = cfg.get_string("sam");
  if (nprocs == 1) {
    std::vector<align::SamRecord> sam;
    if (!sam_path.empty()) {
      sam = align::read_sam(sam_path).records;
      // read_sam's target ids index its own header; remap to our contigs.
      for (auto& r : sam) {
        if (!r.aligned()) continue;
        const auto it = std::find_if(contigs.begin(), contigs.end(), [&](const auto& c) {
          return c.name == r.target_name;
        });
        if (it == contigs.end()) throw std::runtime_error("--sam references unknown contig");
        r.target_id = static_cast<std::int32_t>(it - contigs.begin());
      }
    } else {
      const align::ContigIndex index(contigs, align::AlignerOptions{});
      sam = align::SeedExtendAligner(index).align_all(reads);
    }
    const auto scaffold = chrysalis::scaffold_pairs(sam, contigs, {});
    components = chrysalis::run_shared(contigs, counter, gff, scaffold).components;
    const auto r = chrysalis::run_shared(contigs, components, reads_path, r2t, out_dir);
    assigned = r.assignments.size();
  } else {
    // The paper's mechanism: the Chrysalis sub-steps run under mpirun —
    // here re-launched on a rank failure, like the pipeline's retry driver.
    const auto run_world = [&] {
      simpi::run(
          nprocs,
          [&](simpi::Context& ctx) {
            const auto bowtie =
                align::distributed_bowtie(ctx, contigs, reads, align::AlignerOptions{});
            std::vector<chrysalis::ContigPair> scaffold;
            if (ctx.rank() == 0) {
              scaffold = chrysalis::scaffold_pairs(bowtie.records, contigs, {});
            }
            // Every rank must use identical scaffold pairs.
            std::vector<std::int32_t> wire;
            if (ctx.rank() == 0) {
              for (const auto& p : scaffold) {
                wire.push_back(p.a);
                wire.push_back(p.b);
              }
            }
            ctx.bcast(wire, 0);
            scaffold.clear();
            for (std::size_t i = 0; i + 1 < wire.size(); i += 2) {
              scaffold.push_back({wire[i], wire[i + 1]});
            }
            const auto g = chrysalis::run_hybrid(ctx, contigs, counter, gff, scaffold);
            const auto r =
                chrysalis::run_hybrid(ctx, contigs, g.components, reads_path, r2t, out_dir);
            if (ctx.rank() == 0) {
              components = g.components;
              assigned = r.assignments.size();
            }
          },
          {}, fault);
    };
    for (;; ++attempts) {
      try {
        run_world();
        break;
      } catch (const simpi::RankFaultError& e) {
        if (attempts >= max_attempts) throw;
        std::cout << "chrysalis: world aborted (" << e.what() << "); re-launching "
                  << attempts + 1 << "/" << max_attempts << '\n';
      } catch (const simpi::AbortedError& e) {
        if (attempts >= max_attempts) throw;
        std::cout << "chrysalis: world aborted (" << e.what() << "); re-launching "
                  << attempts + 1 << "/" << max_attempts << '\n';
      }
    }
  }

  chrysalis::write_components(out_dir + "/components.txt", components);

  checkpoint::StageRecord rec;
  rec.stage = "chrysalis";
  rec.fingerprint = fp;
  rec.complete = true;
  rec.attempt = attempts;
  rec.outputs.push_back(checkpoint::capture_artifact(out_dir, "components.txt"));
  rec.outputs.push_back(checkpoint::capture_artifact(out_dir, "readsToComponents.out.tsv"));
  manifest.upsert(std::move(rec));
  manifest.commit();

  std::cout << "chrysalis (" << (nprocs == 1 ? "shared-memory" : "hybrid") << ", nprocs="
            << nprocs << "): " << contigs.size() << " contigs -> "
            << components.num_components() << " components; " << assigned
            << " reads assigned -> " << out_dir << "/{components.txt,readsToComponents.out.tsv}\n";
  if (attempts > 1) {
    std::cout << "chrysalis: recovered from " << attempts - 1
              << " injected rank failure(s)\n";
  }
  return 0;
}

int stage_butterfly(const Config& cfg, int k) {
  const auto contigs = seq::read_all(cfg.positional()[1]);
  const std::string dir = cfg.positional()[2];
  const auto reads = seq::read_all(cfg.positional()[3]);
  const auto components = chrysalis::read_components(dir + "/components.txt");
  const auto assignments =
      chrysalis::read_assignments(dir + "/readsToComponents.out.tsv");

  butterfly::ButterflyOptions o;
  o.k = k;
  const auto transcripts =
      butterfly::run_butterfly(contigs, components, assignments, reads, o);
  std::string out = cfg.get_string("out");
  if (out.empty()) out = "Trinity.fa";
  seq::write_fasta(out, transcripts, 70);
  std::cout << "butterfly: " << components.num_components() << " components -> "
            << transcripts.size() << " transcripts -> " << out << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinity;
  Config cfg("trinity_stages", "run the Trinity pipeline one stage at a time");
  cfg.usage("<jellyfish|inchworm|chrysalis|butterfly> <inputs...>")
      .flag_int("k", 25, "k-mer size")
      .flag_string("out", "", "output file (per-stage default when empty)")
      .flag_string("out-dir", "chrysalis_out", "chrysalis output directory")
      .flag_int("ranks", 1, "hybrid Chrysalis rank count (1 = shared-memory)")
      .flag_string("sam", "", "existing Bowtie SAM to consume instead of realigning")
      .flag_bool("resume", false, "skip chrysalis when its checkpoint validates")
      .flag_string("gff-sharding", "overlap",
                   "hybrid Chrysalis weld movement: pooled, overlap, or owner")
      .with_fault_flags();
  cfg.alias("nprocs", "ranks");
  cfg.alias("overlap-pooling", "gff-sharding");
  try {
    cfg.parse_cli(argc, argv);
  } catch (const ConfigError& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (cfg.help_requested()) {
    std::cout << cfg.help_text();
    return 0;
  }
  for (const auto& note : cfg.deprecation_notes()) {
    std::cerr << "trinity_stages: " << note << '\n';
  }
  const int k = static_cast<int>(cfg.get_int("k"));
  const auto& pos = cfg.positional();
  try {
    if (pos.size() >= 2 && pos[0] == "jellyfish") return stage_jellyfish(cfg, k);
    if (pos.size() >= 2 && pos[0] == "inchworm") return stage_inchworm(cfg, k);
    if (pos.size() >= 3 && pos[0] == "chrysalis") return stage_chrysalis(cfg, k);
    if (pos.size() >= 4 && pos[0] == "butterfly") return stage_butterfly(cfg, k);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
